"""The discrete-event simulation loop.

Each delivery task flows through three stages, each a planning query
issued online at the moment the stage begins:

1. *pickup* — the assigned robot drives from its cell to the rack;
2. *transmission* — the robot carries the rack to the picker;
3. *return* — the robot carries the rack back to its home cell.

Tasks arrive at their release times; a task waits in FIFO order until a
robot is idle.  Planning is instantaneous in simulated time (TC is wall
time, accounted separately by the planner), matching the paper's test
environment, which measures algorithm time while the warehouse clock
advances with robot motion.

**Execution disturbances.**  An optional seeded
:class:`~repro.simulation.faults.FaultPlan` injects robot stalls,
transient cell blockages, slowdowns and aisle closures mid-run.  In the
default ``recovery="serial"`` mode each fault triggers a
*stop-and-replan* recovery (after Kulich et al.'s "Push, Stop, and
Replan"): the disturbed robot's committed route suffix is decommitted
and replanned from its actual position via
:meth:`~repro.core.planner.SRPPlanner.replan_from`, and a bounded
cascade stops-and-replans any other robot whose surviving route now
conflicts with the disturbance.  ``recovery="joint"`` instead groups
mutually conflicting robots into clusters and recovers each cluster
jointly (prioritised replanning, CBS escalation, serial fallback) via
:mod:`repro.simulation.recovery`.  With an empty fault plan the
engine's behaviour is bit-identical to an undisturbed run in either
mode.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.validate import (
    Conflict,
    audit_planner_state,
    find_conflicts,
    find_illegal_cells,
)
from repro.exceptions import PlanningFailedError, SimulationError
from repro.planner_base import Planner
from repro.simulation.charging import ChargingScheduler, ChargingStation
from repro.simulation.dispatch import (
    BatteryAwareDispatcher,
    Dispatcher,
    NearestIdleDispatcher,
)
from repro.simulation.energy import BatterySpec, FleetEnergy
from repro.simulation.faults import (
    AisleClosureFault,
    BlockageFault,
    Fault,
    FaultPlan,
    SlowdownFault,
    StallFault,
)
from repro.simulation.metrics import ProgressSnapshot, SimulationMetrics
from repro.simulation.recovery import resolve_joint, stretch_route_suffix
from repro.simulation.robots import Robot, RobotFleet
from repro.types import Grid, Query, QueryKind, Route, Task
from repro.warehouse.matrix import Warehouse

_STAGE_KINDS = (QueryKind.PICKUP, QueryKind.TRANSMISSION, QueryKind.RETURN)

#: event-heap entry: (time, seq, kind, payload); kinds: 0 release,
#: 1 stage done, 2 fault injection
_Event = Tuple[int, int, int, Any]

#: busy horizon marking a robot as claimed while its stage is planned
_CLAIMED = 1 << 60

#: recovery-cascade rounds tried per fault before declaring divergence
_MAX_RECOVERY_ROUNDS = 32


@dataclass
class SimulationResult:
    """End-of-day aggregates of one simulated day."""

    planner_name: str
    n_tasks: int
    completed_tasks: int
    failed_tasks: int
    makespan: int  # the paper's OG
    tc_seconds: float  # the paper's TC
    peak_mc_bytes: Optional[int]  # max of the paper's MC curve
    snapshots: List[ProgressSnapshot]
    conflicts: List[Conflict]
    #: faults injected from the fault plan (0 on undisturbed runs)
    faults_injected: int = 0
    #: successful decommit/replan recoveries performed
    replans: int = 0
    #: tasks abandoned because a recovery replan failed
    recovery_failures: int = 0
    #: planner-state audit findings (filled when ``validate=True`` and
    #: the planner exposes auditable stores; empty means stores and
    #: crossings exactly matched the surviving routes)
    audit_violations: List[str] = field(default_factory=list)
    #: recovery strategy the run was configured with
    recovery: str = "serial"
    #: recovery planning operations attempted (``replan_from`` calls
    #: plus externally planned suffix commits) — with
    #: ``decommitted_segments`` the serial-vs-joint efficiency metric
    replan_attempts: int = 0
    #: store segments removed by route decommits
    decommitted_segments: int = 0
    #: conflict clusters recovered jointly (0 on serial runs)
    recovery_clusters: int = 0
    #: largest cluster seen over the day
    max_cluster_size: int = 0
    #: robots that went through joint cluster recovery
    cluster_robots: int = 0
    #: clusters escalated to CBS after prioritised replanning failed
    recovery_cbs: int = 0
    #: clusters that fell back to the serial hold-and-replan ladder
    recovery_serial: int = 0
    #: in-flight routes stretched by slowdown faults
    slowdown_stretches: int = 0
    #: aisle-closure cells committed as blockage pseudo-routes
    closure_cells: int = 0
    #: structured recovery events (cluster recoveries, abandoned
    #: tasks), bounded; each carries size/strategy/decommit counts
    recovery_events: List[Dict[str, object]] = field(default_factory=list)
    #: charge trips launched over the day (0 with the battery disabled)
    charge_trips: int = 0
    #: charge-trip legs abandoned because planning failed (retried on a
    #: later event; a persistently failing trip shows up here loudly)
    charge_aborts: int = 0
    #: total estimated seconds robots queued for busy charging pads
    charge_queue_wait: int = 0
    #: robots whose battery hit zero — must be 0 on a well-provisioned
    #: day; anything else means the thresholds were too tight
    stranded_robots: int = 0
    #: total charge units drained executing routes over the day
    energy_drained: int = 0
    #: charging stations the day was provisioned with
    charge_stations: int = 0

    @property
    def og(self) -> int:
        """Alias matching the paper's metric name."""
        return self.makespan


@dataclass
class _ActiveTask:
    """One in-flight stage: a delivery leg, or a charge-trip leg.

    ``charging`` trips carry no :class:`~repro.types.Task`; their
    ``stage`` indexes the charge-trip phases instead (0 travel to the
    station's queue cell, 1 dock on the pad, 2 clear to the exit cell).
    Both kinds flow through the same executing map, the same stage-done
    events and the same recovery machinery.
    """

    task: Optional[Task]
    robot: Robot
    stage: int = 0  # index into _STAGE_KINDS (or the charge phases)
    #: query id and committed route of the stage being executed
    query_id: int = -1
    route: Optional[Route] = None
    #: bumped on every recovery replan; stage-done events carry the
    #: epoch they were scheduled under, so superseded events are inert
    epoch: int = 0
    #: True for charge-trip legs (battery-triggered detours)
    charging: bool = False
    #: the reserved charging station (charge trips only)
    station: Optional[ChargingStation] = None
    #: the scheduler's pad admission time for this trip
    admit: int = 0


class Simulation:
    """Drive one day of tasks through a planner and record metrics."""

    def __init__(
        self,
        warehouse: Warehouse,
        planner: Planner,
        tasks: Sequence[Task],
        snapshot_every: float = 0.02,
        measure_memory: bool = True,
        memory_every: float = 0.1,
        validate: bool = False,
        prune_interval: int = 256,
        handover_delay: int = 1,
        dispatcher: Optional[Dispatcher] = None,
        faults: Optional[FaultPlan] = None,
        recovery: str = "serial",
        battery: Optional[BatterySpec] = None,
        stations: Optional[Sequence[ChargingStation]] = None,
    ) -> None:
        if not tasks:
            raise SimulationError("cannot simulate an empty task list", phase="setup")
        if recovery not in ("serial", "joint"):
            raise SimulationError(
                f"unknown recovery mode {recovery!r}; expected 'serial' or 'joint'",
                phase="setup",
            )
        if not warehouse.robot_homes:
            raise SimulationError(
                "warehouse defines no robot home cells", phase="setup"
            )
        self.warehouse = warehouse
        self.planner = planner
        self.tasks = sorted(tasks, key=lambda t: (t.release_time, t.task_id))
        self.fleet = RobotFleet(list(warehouse.robot_homes))
        self.metrics = SimulationMetrics(
            total_tasks=len(self.tasks),
            snapshot_every=snapshot_every,
            measure_memory=measure_memory,
            memory_every=memory_every,
        )
        self.validate = validate
        #: simulated seconds between planner.prune calls; <= 0 disables
        #: pruning entirely (stores then only grow, but no plan-cache
        #: entries are ever invalidated by version bumps — useful when
        #: profiling the cache in isolation).  Stores bump their content
        #: version only when a prune actually drops segments, so a no-op
        #: prune keeps the planner's edge-weight cache warm.
        self.prune_interval = prune_interval
        #: seconds a robot spends lifting/dropping a rack between stages;
        #: also means a stage's start cell is no longer claimed by the
        #: robot's own previous arrival second.
        self.handover_delay = handover_delay
        self.dispatcher: Dispatcher = dispatcher or NearestIdleDispatcher()
        #: recovery strategy for fault disturbances: "serial" is PR 2's
        #: one-robot-at-a-time stop-and-replan cascade; "joint" groups
        #: conflicting robots into clusters and recovers each jointly
        #: (see repro.simulation.recovery).
        self.recovery = recovery
        #: battery/charging axis — None keeps the engine's behaviour
        #: byte-identical to an energy-unaware run (every battery hook
        #: below is gated on ``self.energy``).
        self.battery = battery
        self.energy: Optional[FleetEnergy] = None
        self.charger: Optional[ChargingScheduler] = None
        self.charge_stations: List[ChargingStation] = list(stations or ())
        #: robots currently on a charge trip (launch guard: a leg
        #: finishing at second t makes the robot look idle to events at
        #: t that pop before its stage-done, and must not re-trip)
        self._on_charge_trip: List[bool] = []
        if battery is not None:
            if not self.charge_stations:
                raise SimulationError(
                    "battery simulation needs at least one charging station "
                    "(see repro.simulation.charging.place_stations)",
                    phase="setup",
                )
            for station in self.charge_stations:
                station.validate(warehouse)
            self.energy = FleetEnergy(battery, len(self.fleet))
            self.charger = ChargingScheduler(
                self.charge_stations, getattr(planner, "distance_maps", None)
            )
            self._on_charge_trip = [False] * len(self.fleet)
            # Priority threading at the dispatch layer: robots bound for
            # a charger (or stranded) are never handed delivery tasks.
            self.dispatcher = BatteryAwareDispatcher(
                self.dispatcher, self._robot_needs_charge
            )
        self.faults = faults if faults is not None else FaultPlan.empty()
        if self.faults:
            self.faults.validate()
            if not hasattr(self.planner, "replan_from"):
                raise SimulationError(
                    f"planner {self.planner.name} cannot recover from execution "
                    "faults (no replan_from); run it with an empty fault plan",
                    phase="fault-injection",
                )
            if (self.faults.slowdowns or self.faults.closures) and not hasattr(
                self.planner, "commit_recovered_route"
            ):
                raise SimulationError(
                    f"planner {self.planner.name} cannot execute slowdown or "
                    "closure faults (no commit_recovered_route)",
                    phase="fault-injection",
                )
        self._routes: Dict[int, Route] = {}  # query_id -> latest route
        #: query_id -> the in-flight stage that committed it.  Keyed by
        #: query rather than robot: a release event landing on exactly a
        #: stage's finish second can dispatch a robot's next task before
        #: that stage-done event pops, so one robot may briefly carry
        #: two in-flight stages — both must stay visible to recovery.
        self._executing: Dict[int, _ActiveTask] = {}
        #: blockage windows still relevant to the recovery cascade
        self._active_blockages: List[BlockageFault] = []
        self._next_query_id = 0
        self._seq = 0
        self.completed = 0
        self.failed = 0
        self.makespan = 0
        self.faults_injected = 0
        self.replans = 0
        self.recovery_failures = 0
        self.recovery_clusters = 0
        self.max_cluster_size = 0
        self.cluster_robots = 0
        self.recovery_cbs = 0
        self.recovery_serial = 0
        self.slowdown_stretches = 0
        self.closure_cells = 0
        self.recovery_events: List[Dict[str, object]] = []
        self.charge_trips = 0
        self.charge_aborts = 0
        self._last_prune = 0

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the whole day and return the aggregates."""
        # Event heap: (time, seq, kind, payload); kinds: 0 release,
        # 1 stage done, 2 fault injection.
        events: List[_Event] = []
        for task in self.tasks:
            events.append((task.release_time, self._next_seq(), 0, task))
        for fault in self.faults:
            events.append((fault.time, self._next_seq(), 2, fault))
        heapq.heapify(events)
        waiting: List[Task] = []

        while events:
            now, _s, kind, payload = heapq.heappop(events)
            if kind == 0:
                waiting.append(payload)
            elif kind == 1:
                active, epoch = payload
                if epoch == active.epoch:  # superseded by a recovery otherwise
                    if active.charging:
                        self._advance_charge(active, now, events)
                    else:
                        self._advance_stage(active, now, events)
            else:
                self._inject_fault(payload, now, events)
            # Low-battery robots head to a charger before task dispatch
            # sees them: going-to-charge outranks idle work.
            if self.energy is not None:
                self._launch_charge_trips(now, events)
            # Dispatch as many waiting tasks as the policy allows.
            if waiting:
                assignments = self.dispatcher.assign(waiting, self.fleet, now)
                started = {id(task) for task, _robot in assignments}
                waiting = [t for t in waiting if id(t) not in started]
                for task, robot in assignments:
                    robot.busy_until = _CLAIMED
                    self._start_stage(_ActiveTask(task, robot), now, events)
            if self.prune_interval > 0 and now - self._last_prune >= self.prune_interval:
                self.planner.prune(now)
                self._last_prune = now

        conflicts: List[Conflict] = []
        audit: List[str] = []
        if self.validate:
            routes = list(self._routes.values())
            conflicts = find_conflicts(routes)
            conflicts += find_illegal_cells(routes, self.warehouse)
            if hasattr(self.planner, "stores"):
                audit = audit_planner_state(
                    self.planner, routes, since=self._last_prune
                )
        stats = getattr(self.planner, "stats", None)
        return SimulationResult(
            planner_name=self.planner.name,
            n_tasks=len(self.tasks),
            completed_tasks=self.completed,
            failed_tasks=self.failed,
            makespan=self.makespan,
            tc_seconds=self.planner.timers.total,
            peak_mc_bytes=self.metrics.peak_mc(),
            snapshots=self.metrics.snapshots,
            conflicts=conflicts,
            faults_injected=self.faults_injected,
            replans=self.replans,
            recovery_failures=self.recovery_failures,
            audit_violations=audit,
            recovery=self.recovery,
            replan_attempts=getattr(stats, "replan_attempts", 0),
            decommitted_segments=getattr(stats, "decommitted_segments", 0),
            recovery_clusters=self.recovery_clusters,
            max_cluster_size=self.max_cluster_size,
            cluster_robots=self.cluster_robots,
            recovery_cbs=self.recovery_cbs,
            recovery_serial=self.recovery_serial,
            slowdown_stretches=self.slowdown_stretches,
            closure_cells=self.closure_cells,
            recovery_events=self.recovery_events,
            charge_trips=self.charge_trips,
            charge_aborts=self.charge_aborts,
            charge_queue_wait=(
                self.charger.queue_wait if self.charger is not None else 0
            ),
            stranded_robots=(
                len(self.energy.stranded_ids) if self.energy is not None else 0
            ),
            energy_drained=(
                self.energy.total_drained if self.energy is not None else 0
            ),
            charge_stations=(
                len(self.charge_stations) if self.energy is not None else 0
            ),
        )

    # ------------------------------------------------------------------
    def _start_stage(self, active: _ActiveTask, now: int, events: List[_Event]) -> None:
        task, robot = active.task, active.robot
        assert task is not None  # delivery stages always carry a task
        kind = _STAGE_KINDS[active.stage]
        if kind is QueryKind.PICKUP:
            origin, destination = robot.cell, task.rack
        elif kind is QueryKind.TRANSMISSION:
            origin, destination = task.rack, task.picker
        else:
            origin, destination = task.picker, task.rack
        query = Query(origin, destination, now, kind, self._next_query_id_value())
        try:
            route = self.planner.plan(query)
        except PlanningFailedError:
            # Abandon the task; the robot frees up where it stands.
            self.failed += 1
            robot.busy_until = now
            self._task_finished(now)
            return
        self._record_route(query.query_id, route)
        self._install_stage(active, query, route, events)

    def _install_stage(
        self, active: _ActiveTask, query: Query, route: Route, events: List[_Event]
    ) -> None:
        """Register one planned stage: slowdown stretch, event, cascade.

        Shared by delivery stages and charge-trip legs — both commit
        through the same planner, stretch under the same slowdown
        windows, and arm the same epoch-stamped stage-done events.
        """
        robot = active.robot
        stretched_slow = False
        if (
            robot.slow_until > route.start_time
            and robot.slow_factor > 1
            and hasattr(self.planner, "commit_recovered_route")
        ):
            # The robot is inside a slowdown window: its fresh route must
            # be executed at reduced speed.  Rewrite it immediately as the
            # stretched hold/move interleaving so the committed claims
            # match the physical motion, then chase any conflicts the
            # longer occupancy introduced.
            stretched = stretch_route_suffix(
                route, route.start_time, robot.slow_factor, robot.slow_until
            )
            if stretched.finish_time != route.finish_time:
                self.planner.decommit_for_recovery(
                    query.query_id, route.origin, route.start_time
                )
                route = self.planner.commit_recovered_route(
                    query.query_id, route.origin, route.start_time, stretched
                )
                self._apply_revisions()
                self.slowdown_stretches += 1
                stretched_slow = True
        active.query_id = query.query_id
        active.route = route
        self._executing[query.query_id] = active
        robot.cell = route.destination
        robot.busy_until = route.finish_time
        heapq.heappush(
            events, (route.finish_time, self._next_seq(), 1, (active, active.epoch))
        )
        if stretched_slow:
            # Run after the stage is fully registered so the cascade sees
            # (and may itself revise) the stretched route; a further
            # replan supersedes the event pushed above via the epoch.
            self._resolve_disturbances(route.start_time, events)

    def _advance_stage(self, active: _ActiveTask, now: int, events: List[_Event]) -> None:
        self._executing.pop(active.query_id, None)
        if self.energy is not None and active.route is not None:
            self.energy.drain_route(active.robot.robot_id, active.route)
        active.stage += 1
        if active.stage < len(_STAGE_KINDS):
            active.robot.busy_until = _CLAIMED
            # A stalled robot resumes its next stage only once the stall
            # has cleared (the rack handover cannot happen mid-fault).
            resume = max(now + self.handover_delay, active.robot.stalled_until)
            self._start_stage(active, resume, events)
            return
        # Task complete: the robot idles under the returned rack.
        active.robot.tasks_served += 1
        active.robot.busy_until = now
        self.completed += 1
        self.makespan = max(self.makespan, now)
        self._task_finished(now)

    # ------------------------------------------------------------------
    # Battery drain and charge trips
    # ------------------------------------------------------------------
    def _robot_needs_charge(self, robot: Robot) -> bool:
        """Dispatch filter: low-battery robots take no delivery tasks."""
        assert self.energy is not None
        return self.energy.needs_charge(robot.robot_id)

    def _launch_charge_trips(self, now: int, events: List[_Event]) -> None:
        """Send every idle low-battery robot to its best station.

        Runs once per event in robot-id order, so launches are
        deterministic.  Stranded robots (charge exactly zero) stay
        where they are — stranding is a provisioning failure counted
        loudly, not silently healed by a free tow to the charger.
        """
        assert self.energy is not None and self.charger is not None
        for robot in self.fleet.robots:
            rid = robot.robot_id
            if (
                self._on_charge_trip[rid]
                or not robot.is_idle(now)
                or self.energy.is_stranded(rid)
                or not self.energy.needs_charge(rid)
            ):
                continue
            station, _admit = self.charger.pick(robot.cell, now)
            duration = self.energy.charge_duration(rid)
            admit = self.charger.reserve(station, robot.cell, now, duration)
            self.charge_trips += 1
            self._on_charge_trip[rid] = True
            robot.busy_until = _CLAIMED
            active = _ActiveTask(
                None, robot, charging=True, station=station, admit=admit
            )
            self._start_charge_stage(active, max(now, robot.stalled_until), events)

    def _start_charge_stage(
        self, active: _ActiveTask, now: int, events: List[_Event]
    ) -> None:
        """Plan and commit one charge-trip leg through the SRP planner.

        Legs are ordinary GENERIC queries — collision-checked and
        committed into the segment stores like any delivery route, and
        recovered by the same fault machinery.
        """
        station = active.station
        assert station is not None
        robot = active.robot
        if active.stage == 0:
            origin, destination, release = robot.cell, station.queue_cell, now
        elif active.stage == 1:
            # Hold at the queue cell until one second before admission,
            # so the docking move lands on the pad right on time.
            origin, destination = station.queue_cell, station.cell
            release = max(now, active.admit - 1)
        else:
            origin, destination, release = station.cell, station.exit_cell, now
        if origin == destination:
            # Degenerate leg: the robot already stands on the target
            # (it went low while idling on the station's queue cell).
            # Nothing to plan or commit; advance the trip directly.
            active.route = None
            active.query_id = -1
            robot.busy_until = _CLAIMED
            heapq.heappush(
                events, (release, self._next_seq(), 1, (active, active.epoch))
            )
            return
        query = Query(
            origin, destination, release, QueryKind.GENERIC,
            self._next_query_id_value(),
        )
        try:
            route = self.planner.plan(query)
        except PlanningFailedError:
            self._abort_charge(active, release)
            return
        self._record_route(query.query_id, route)
        active.query_id = query.query_id
        self._install_stage(active, query, route, events)

    def _advance_charge(
        self, active: _ActiveTask, now: int, events: List[_Event]
    ) -> None:
        """One charge-trip leg finished: dock, refill, or complete."""
        assert self.energy is not None and self.charger is not None
        station = active.station
        assert station is not None
        robot = active.robot
        self._executing.pop(active.query_id, None)
        if active.route is not None:
            self.energy.drain_route(robot.robot_id, active.route)
        active.stage += 1
        if active.stage == 1:
            # Arrived at the queue cell; dock when the pad admits us.
            robot.busy_until = _CLAIMED
            resume = max(now + self.handover_delay, robot.stalled_until)
            self._start_charge_stage(active, resume, events)
            return
        if active.stage == 2:
            # Docked.  Pin the pad busy for the *actual* charge window
            # (congestion can put the docking later than the
            # reservation estimated), refill, then clear to the exit
            # cell so the next robot can dock.
            fill = self.energy.charge_duration(robot.robot_id)
            done = now + fill
            self.charger.occupy(station, done)
            self.energy.refill(robot.robot_id)
            robot.busy_until = _CLAIMED
            resume = max(done, now + self.handover_delay, robot.stalled_until)
            self._start_charge_stage(active, resume, events)
            return
        # Trip complete: the robot idles, fully charged, at the exit cell.
        robot.busy_until = now
        self._on_charge_trip[robot.robot_id] = False

    def _abort_charge(self, active: _ActiveTask, now: int) -> None:
        """Abandon a charge trip whose leg could not be planned.

        The robot frees up where it stands, still low on battery, so a
        later event relaunches the trip (possibly to another station).
        Retries push no new events, so a persistently unplannable trip
        is bounded by the day's event count and shows up loudly in
        ``charge_aborts`` instead of hanging the loop.
        """
        self.charge_aborts += 1
        active.epoch += 1
        self._executing.pop(active.query_id, None)
        active.robot.busy_until = now
        self._on_charge_trip[active.robot.robot_id] = False

    # ------------------------------------------------------------------
    # Fault injection and stop-and-replan recovery
    # ------------------------------------------------------------------
    def _inject_fault(self, fault: Fault, now: int, events: List[_Event]) -> None:
        self.faults_injected += 1
        forced: List[Tuple[_ActiveTask, Grid, int]] = []
        if isinstance(fault, StallFault):
            robots = self.fleet.robots
            robot = robots[fault.robot_id % len(robots)]
            robot.stalls += 1
            robot.stalled_until = max(robot.stalled_until, now + fault.duration)
            # Every in-flight stage of this robot whose route overlaps
            # the stall window must be recovered.  Routes departing
            # after the stall clears stay executable verbatim and must
            # not be disturbed (pulling their start earlier would
            # fabricate standing presence the model does not reserve).
            disturbed = [
                a
                for a in self._executing.values()
                if a.robot is robot
                and a.route is not None
                and a.route.finish_time > now
                and a.route.start_time < now + fault.duration
            ]
            if not disturbed:
                # Idle or between stages: the stall only delays the next
                # dispatch/handover; nothing committed needs recovery.
                if robot.busy_until != _CLAIMED:
                    robot.busy_until = max(robot.busy_until, robot.stalled_until)
                return
            if self.recovery == "joint":
                # Joint mode defers the pinned robots to the cluster
                # resolver so they are recovered together with whoever
                # their forced holds collide with.
                forced = [
                    (a, a.route.position_at(now), now + fault.duration)
                    for a in disturbed
                ]
            else:
                for active in disturbed:
                    cell = active.route.position_at(now)
                    self._replan_execution(
                        active, cell, now, hold_until=now + fault.duration,
                        events=events,
                    )
        elif isinstance(fault, SlowdownFault):
            self._apply_slowdown(fault, now, events)
        elif isinstance(fault, AisleClosureFault):
            committed_any = False
            for cell in fault.cells:
                if self.warehouse.is_rack(cell):
                    continue  # racks are never traversed; inert
                if self.planner.cell_occupied(cell, now):
                    # Debris cannot land under a robot (same rule as
                    # single-cell blockages); the rest of the span still
                    # closes.
                    continue
                self.planner.commit_blockage(cell, now, now + fault.duration)
                self._active_blockages.append(
                    BlockageFault(time=now, cell=cell, duration=fault.duration)
                )
                self.closure_cells += 1
                committed_any = True
            if not committed_any:
                return
        else:
            if self.warehouse.is_rack(fault.cell):
                return  # racks are never traversed; a blocked rack is inert
            if self.planner.cell_occupied(fault.cell, now):
                # Debris cannot land under a robot — and a blockage
                # overlapping a robot's standing second would make its
                # recovery hold conflict with the blockage forever.
                return
            self.planner.commit_blockage(fault.cell, now, now + fault.duration)
            self._active_blockages.append(fault)
        self._resolve_disturbances(now, events, forced=forced)

    def _apply_slowdown(self, fault: SlowdownFault, now: int, events: List[_Event]) -> None:
        """Slow a robot down: stretch its in-flight routes in place.

        The stretched suffix visits the same cells in the same order at
        ``1/factor`` speed (a deterministic hold/move interleaving), so
        this is forced physics rather than a planning choice — conflicts
        the longer occupancy introduces are chased by the disturbance
        cascade that runs after every injection.  Stages planned while
        the window is still open are stretched at plan time
        (see :meth:`_start_stage`).
        """
        robots = self.fleet.robots
        robot = robots[fault.robot_id % len(robots)]
        robot.slowdowns += 1
        until = now + fault.duration
        robot.slow_until = max(robot.slow_until, until)
        robot.slow_factor = fault.factor
        disturbed = [
            a
            for a in self._executing.values()
            if a.robot is robot
            and a.route is not None
            and a.route.finish_time > now
            and a.route.start_time < until
        ]
        for active in disturbed:
            route = active.route
            suffix = stretch_route_suffix(route, now, fault.factor, until)
            if suffix.finish_time == route.finish_time:
                continue  # no move falls inside the window; nothing changes
            cell = route.position_at(now)
            self.planner.decommit_for_recovery(active.query_id, cell, now)
            revised = self.planner.commit_recovered_route(
                active.query_id, cell, now, suffix
            )
            self._apply_revisions()
            self.slowdown_stretches += 1
            self._install_revision(active, revised, events)

    def _resolve_disturbances(
        self,
        now: int,
        events: List[_Event],
        forced: Sequence[Tuple[_ActiveTask, Grid, int]] = (),
    ) -> None:
        """Stop-and-replan every robot whose surviving route conflicts.

        A disturbance (a stalled robot's hold, a blockage, or a freshly
        recovered route) can invalidate routes committed earlier; each
        round detects grid-level conflicts among the not-yet-executed
        route suffixes (plus blockage windows as pseudo-routes) and
        replans the affected robots from their actual positions.  Each
        recovery is collision-free against all committed state, so the
        cascade converges; the round bound turns a logic bug into a loud
        :class:`SimulationError` instead of a hang.

        With ``recovery="joint"`` the work is delegated to
        :func:`repro.simulation.recovery.resolve_joint`, which recovers
        whole conflict clusters at a time; ``forced`` carries robots
        pinned in place by the triggering fault (serial mode replans
        them before calling here, so it always passes none).
        """
        if self.recovery == "joint":
            resolve_joint(self, now, events, forced=forced)
            return
        for _round in range(_MAX_RECOVERY_ROUNDS):
            self._active_blockages = [
                b for b in self._active_blockages if b.time + b.duration >= now
            ]
            suffixes: List[Route] = []
            owners: List[Optional[_ActiveTask]] = []
            for active in self._executing.values():
                route = active.route
                if route is None or route.finish_time <= now:
                    continue
                # Occupancy follows the validator's convention exactly:
                # a route claims grids over [start_time, finish_time]
                # only (standing robots between stages are non-blocking,
                # DESIGN.md §4), so the cascade replans precisely the
                # robots whose *routes* the disturbance invalidates.
                start = max(now, route.start_time)
                grids = [
                    route.position_at(t) for t in range(start, route.finish_time + 1)
                ]
                suffixes.append(Route(start, grids, query_id=active.query_id))
                owners.append(active)
            for blockage in self._active_blockages:
                start = max(blockage.time, now)
                span = blockage.time + blockage.duration - start + 1
                suffixes.append(Route(start, [blockage.cell] * span))
                owners.append(None)
            disturbed: Dict[int, _ActiveTask] = {}
            for conflict in find_conflicts(suffixes):
                for idx in (conflict.route_a, conflict.route_b):
                    active = owners[idx]
                    if active is not None:
                        disturbed[active.query_id] = active
            if not disturbed:
                return
            for active in disturbed.values():
                if active.query_id not in self._executing:
                    continue  # its recovery failed earlier this round
                cell = active.route.position_at(now)
                self._replan_execution(
                    active, cell, now, hold_until=now + 1, events=events
                )
        raise SimulationError(
            "recovery cascade did not converge within "
            f"{_MAX_RECOVERY_ROUNDS} rounds",
            release_time=now,
            phase="recovery-cascade",
        )

    def _replan_execution(
        self,
        active: _ActiveTask,
        cell: Grid,
        now: int,
        hold_until: int,
        events: List[_Event],
        decommitted: bool = False,
        context: Optional[Dict[str, object]] = None,
    ) -> None:
        """Stop one robot at ``cell`` and recover its route in place.

        ``decommitted`` marks a suffix already stripped by joint
        recovery; ``context`` carries the cluster diagnostics (size,
        strategy, decommit count) attached to the failure exception and
        the recovery event log when the ladder gives up.
        """
        robot = active.robot
        try:
            revised = self.planner.replan_from(
                active.query_id, cell, now, hold_until=hold_until,
                decommitted=decommitted,
            )
        except PlanningFailedError as exc:
            # Recovery exhausted its ladder: abandon the task where the
            # robot stands (mirrors the stage-planning failure policy).
            if context is not None:
                exc.cluster_size = context.get("cluster_size", exc.cluster_size)  # type: ignore[assignment]
                exc.strategy = context.get("strategy", exc.strategy)  # type: ignore[assignment]
                exc.decommits = context.get("decommits", exc.decommits)  # type: ignore[assignment]
            elif exc.strategy is None:
                exc.strategy = "serial"
            self._log_recovery_event(
                {"time": now, "event": "task-abandoned", **exc.diagnostics()}
            )
            self._apply_revisions()
            if self.energy is not None and active.route is not None:
                # Drain the prefix actually driven before the stop.
                self.energy.drain_route(robot.robot_id, active.route, until=now)
            if active.charging:
                self.charge_aborts += 1
                self._on_charge_trip[robot.robot_id] = False
            else:
                self.failed += 1
            self.recovery_failures += 1
            active.epoch += 1  # neutralise the pending stage-done event
            self._executing.pop(active.query_id, None)
            robot.cell = cell
            robot.busy_until = max(robot.busy_until, hold_until)
            # The abandoned robot's residual hold stays committed in the
            # stores; surface it to the cascade as a pseudo-blockage so
            # robots whose committed routes cross it are replanned too.
            release = max(now + 1, hold_until)
            self._active_blockages.append(
                BlockageFault(time=now, cell=cell, duration=release - now)
            )
            if not active.charging:
                self._task_finished(now)
            return
        self._apply_revisions()
        self.replans += 1
        self._install_revision(active, revised, events)

    def _install_revision(
        self, active: _ActiveTask, revised: Route, events: List[_Event]
    ) -> None:
        """Adopt a recovered route: bump the epoch, re-arm the stage event."""
        robot = active.robot
        if self.energy is not None and active.route is not None:
            # The executed prefix of the superseded route drains now;
            # the revised route drains at its own stage-done.
            self.energy.drain_route(
                robot.robot_id, active.route, until=revised.start_time
            )
        active.route = revised
        active.epoch += 1
        robot.cell = revised.destination
        robot.busy_until = revised.finish_time
        heapq.heappush(
            events, (revised.finish_time, self._next_seq(), 1, (active, active.epoch))
        )

    def _log_recovery_event(self, event: Dict[str, object]) -> None:
        """Record a structured recovery event, bounded against storms."""
        if len(self.recovery_events) < 512:
            self.recovery_events.append(event)

    def _apply_revisions(self) -> None:
        for revised_id, revised in self.planner.take_revisions().items():
            self._routes[revised_id] = revised

    # ------------------------------------------------------------------
    def _task_finished(self, now: int) -> None:
        finished = self.completed + self.failed
        self.metrics.maybe_snapshot(finished, now, self.planner)

    def _record_route(self, query_id: int, route: Route) -> None:
        self._routes[query_id] = route
        self._apply_revisions()

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _next_query_id_value(self) -> int:
        self._next_query_id += 1
        return self._next_query_id


def run_day(
    warehouse: Warehouse,
    planner: Planner,
    tasks: Sequence[Task],
    snapshot_every: float = 0.02,
    measure_memory: bool = True,
    memory_every: float = 0.1,
    validate: bool = False,
    prune_interval: int = 256,
    handover_delay: int = 1,
    dispatcher: Optional[Dispatcher] = None,
    faults: Optional[FaultPlan] = None,
    recovery: str = "serial",
    battery: Optional[BatterySpec] = None,
    stations: Optional[Sequence[ChargingStation]] = None,
) -> SimulationResult:
    """Convenience wrapper: simulate one day and return the result."""
    sim = Simulation(
        warehouse,
        planner,
        tasks,
        snapshot_every=snapshot_every,
        measure_memory=measure_memory,
        memory_every=memory_every,
        validate=validate,
        prune_interval=prune_interval,
        handover_delay=handover_delay,
        dispatcher=dispatcher,
        faults=faults,
        recovery=recovery,
        battery=battery,
        stations=stations,
    )
    return sim.run()
