"""The discrete-event simulation loop.

Each delivery task flows through three stages, each a planning query
issued online at the moment the stage begins:

1. *pickup* — the assigned robot drives from its cell to the rack;
2. *transmission* — the robot carries the rack to the picker;
3. *return* — the robot carries the rack back to its home cell.

Tasks arrive at their release times; a task waits in FIFO order until a
robot is idle.  Planning is instantaneous in simulated time (TC is wall
time, accounted separately by the planner), matching the paper's test
environment, which measures algorithm time while the warehouse clock
advances with robot motion.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.validate import Conflict, find_conflicts, find_illegal_cells
from repro.exceptions import PlanningFailedError, SimulationError
from repro.planner_base import Planner
from repro.simulation.dispatch import Dispatcher, NearestIdleDispatcher
from repro.simulation.metrics import ProgressSnapshot, SimulationMetrics
from repro.simulation.robots import Robot, RobotFleet
from repro.types import Query, QueryKind, Route, Task
from repro.warehouse.matrix import Warehouse

_STAGE_KINDS = (QueryKind.PICKUP, QueryKind.TRANSMISSION, QueryKind.RETURN)

#: busy horizon marking a robot as claimed while its stage is planned
_CLAIMED = 1 << 60


@dataclass
class SimulationResult:
    """End-of-day aggregates of one simulated day."""

    planner_name: str
    n_tasks: int
    completed_tasks: int
    failed_tasks: int
    makespan: int  # the paper's OG
    tc_seconds: float  # the paper's TC
    peak_mc_bytes: Optional[int]  # max of the paper's MC curve
    snapshots: List[ProgressSnapshot]
    conflicts: List[Conflict]

    @property
    def og(self) -> int:
        """Alias matching the paper's metric name."""
        return self.makespan


@dataclass
class _ActiveTask:
    task: Task
    robot: Robot
    stage: int = 0  # index into _STAGE_KINDS


class Simulation:
    """Drive one day of tasks through a planner and record metrics."""

    def __init__(
        self,
        warehouse: Warehouse,
        planner: Planner,
        tasks: Sequence[Task],
        snapshot_every: float = 0.02,
        measure_memory: bool = True,
        memory_every: float = 0.1,
        validate: bool = False,
        prune_interval: int = 256,
        handover_delay: int = 1,
        dispatcher: Optional[Dispatcher] = None,
    ) -> None:
        if not tasks:
            raise SimulationError("cannot simulate an empty task list")
        if not warehouse.robot_homes:
            raise SimulationError("warehouse defines no robot home cells")
        self.warehouse = warehouse
        self.planner = planner
        self.tasks = sorted(tasks, key=lambda t: (t.release_time, t.task_id))
        self.fleet = RobotFleet(list(warehouse.robot_homes))
        self.metrics = SimulationMetrics(
            total_tasks=len(self.tasks),
            snapshot_every=snapshot_every,
            measure_memory=measure_memory,
            memory_every=memory_every,
        )
        self.validate = validate
        #: simulated seconds between planner.prune calls; <= 0 disables
        #: pruning entirely (stores then only grow, but no plan-cache
        #: entries are ever invalidated by version bumps — useful when
        #: profiling the cache in isolation).  Stores bump their content
        #: version only when a prune actually drops segments, so a no-op
        #: prune keeps the planner's edge-weight cache warm.
        self.prune_interval = prune_interval
        #: seconds a robot spends lifting/dropping a rack between stages;
        #: also means a stage's start cell is no longer claimed by the
        #: robot's own previous arrival second.
        self.handover_delay = handover_delay
        self.dispatcher: Dispatcher = dispatcher or NearestIdleDispatcher()
        self._routes: Dict[int, Route] = {}  # query_id -> latest route
        self._next_query_id = 0
        self._seq = 0
        self.completed = 0
        self.failed = 0
        self.makespan = 0

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the whole day and return the aggregates."""
        # Event heap: (time, seq, kind, payload); kinds: 0 release, 1 stage done.
        events: List = []
        for task in self.tasks:
            events.append((task.release_time, self._next_seq(), 0, task))
        heapq.heapify(events)
        waiting: List[Task] = []
        last_prune = 0

        while events:
            now, _s, kind, payload = heapq.heappop(events)
            if kind == 0:
                waiting.append(payload)
            else:
                self._advance_stage(payload, now, events)
            # Dispatch as many waiting tasks as the policy allows.
            if waiting:
                assignments = self.dispatcher.assign(waiting, self.fleet, now)
                started = {id(task) for task, _robot in assignments}
                waiting = [t for t in waiting if id(t) not in started]
                for task, robot in assignments:
                    robot.busy_until = _CLAIMED
                    self._start_stage(_ActiveTask(task, robot), now, events)
            if self.prune_interval > 0 and now - last_prune >= self.prune_interval:
                self.planner.prune(now)
                last_prune = now

        conflicts: List[Conflict] = []
        if self.validate:
            routes = list(self._routes.values())
            conflicts = find_conflicts(routes)
            conflicts += find_illegal_cells(routes, self.warehouse)
        return SimulationResult(
            planner_name=self.planner.name,
            n_tasks=len(self.tasks),
            completed_tasks=self.completed,
            failed_tasks=self.failed,
            makespan=self.makespan,
            tc_seconds=self.planner.timers.total,
            peak_mc_bytes=self.metrics.peak_mc(),
            snapshots=self.metrics.snapshots,
            conflicts=conflicts,
        )

    # ------------------------------------------------------------------
    def _start_stage(self, active: _ActiveTask, now: int, events: List) -> None:
        task, robot = active.task, active.robot
        kind = _STAGE_KINDS[active.stage]
        if kind is QueryKind.PICKUP:
            origin, destination = robot.cell, task.rack
        elif kind is QueryKind.TRANSMISSION:
            origin, destination = task.rack, task.picker
        else:
            origin, destination = task.picker, task.rack
        query = Query(origin, destination, now, kind, self._next_query_id_value())
        try:
            route = self.planner.plan(query)
        except PlanningFailedError:
            # Abandon the task; the robot frees up where it stands.
            self.failed += 1
            robot.busy_until = now
            self._task_finished(now)
            return
        self._record_route(query.query_id, route)
        robot.cell = route.destination
        robot.busy_until = route.finish_time
        heapq.heappush(events, (route.finish_time, self._next_seq(), 1, active))

    def _advance_stage(self, active: _ActiveTask, now: int, events: List) -> None:
        active.stage += 1
        if active.stage < len(_STAGE_KINDS):
            active.robot.busy_until = _CLAIMED
            self._start_stage(active, now + self.handover_delay, events)
            return
        # Task complete: the robot idles under the returned rack.
        active.robot.tasks_served += 1
        active.robot.busy_until = now
        self.completed += 1
        self.makespan = max(self.makespan, now)
        self._task_finished(now)

    def _task_finished(self, now: int) -> None:
        finished = self.completed + self.failed
        self.metrics.maybe_snapshot(finished, now, self.planner)

    def _record_route(self, query_id: int, route: Route) -> None:
        self._routes[query_id] = route
        for revised_id, revised in self.planner.take_revisions().items():
            if revised_id in self._routes:
                self._routes[revised_id] = revised

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _next_query_id_value(self) -> int:
        self._next_query_id += 1
        return self._next_query_id


def run_day(
    warehouse: Warehouse,
    planner: Planner,
    tasks: Sequence[Task],
    snapshot_every: float = 0.02,
    measure_memory: bool = True,
    memory_every: float = 0.1,
    validate: bool = False,
    prune_interval: int = 256,
    handover_delay: int = 1,
    dispatcher: Optional[Dispatcher] = None,
) -> SimulationResult:
    """Convenience wrapper: simulate one day and return the result."""
    sim = Simulation(
        warehouse,
        planner,
        tasks,
        snapshot_every=snapshot_every,
        measure_memory=measure_memory,
        memory_every=memory_every,
        validate=validate,
        prune_interval=prune_interval,
        handover_delay=handover_delay,
        dispatcher=dispatcher,
    )
    return sim.run()
