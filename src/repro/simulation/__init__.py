"""Online warehouse simulation — the paper's test environment.

Section VIII-A: *"The test environment simulates the emergence of
delivery tasks, and then sends the task information to the route
planning algorithm.  After receiving the results calculated by a route
planning algorithm, the environment assigns those planned routes to
robots for execution.  The system will record all our metrics for
comparison."*

* :mod:`repro.simulation.robots` — robot fleet state and dispatching;
* :mod:`repro.simulation.metrics` — OG / TC / MC recording with
  progress snapshots (the x-axis of Figs. 16-21);
* :mod:`repro.simulation.engine` — the discrete-event loop driving
  tasks through their pickup / transmission / return stages;
* :mod:`repro.simulation.faults` — seeded execution-fault injection
  (robot stalls, transient blockages, slowdowns, aisle closures)
  exercised by the engine's decommit/replan recovery path;
* :mod:`repro.simulation.recovery` — joint conflict-cluster recovery
  (prioritised replanning, CBS escalation, serial fallback) behind the
  engine's ``recovery="joint"`` mode (see ``docs/robustness.md``);
* :mod:`repro.simulation.energy` — deterministic integer battery model
  (per-move/per-hold drain, thresholds, charge rate);
* :mod:`repro.simulation.charging` — charging stations and the
  reservation-based minimum-admission-time scheduler (see
  ``docs/charging.md``).
"""

from repro.simulation.charging import ChargingScheduler, ChargingStation, place_stations
from repro.simulation.dispatch import (
    BatteryAwareDispatcher,
    Dispatcher,
    FleetState,
    FleetView,
    HungarianDispatcher,
    NearestIdleDispatcher,
)
from repro.simulation.energy import BatterySpec, FleetEnergy, route_drain
from repro.simulation.engine import Simulation, SimulationResult, run_day
from repro.simulation.faults import (
    AisleClosureFault,
    BlockageFault,
    Fault,
    FaultPlan,
    SlowdownFault,
    StallFault,
)
from repro.simulation.metrics import ProgressSnapshot, SimulationMetrics
from repro.simulation.recovery import (
    build_clusters,
    recovery_priority,
    resolve_joint,
    stretch_route_suffix,
)
from repro.simulation.robots import Robot, RobotFleet

__all__ = [
    "AisleClosureFault",
    "BlockageFault",
    "Fault",
    "FaultPlan",
    "SlowdownFault",
    "StallFault",
    "build_clusters",
    "recovery_priority",
    "resolve_joint",
    "stretch_route_suffix",
    "ProgressSnapshot",
    "SimulationMetrics",
    "Robot",
    "RobotFleet",
    "BatteryAwareDispatcher",
    "Dispatcher",
    "FleetState",
    "FleetView",
    "HungarianDispatcher",
    "NearestIdleDispatcher",
    "BatterySpec",
    "FleetEnergy",
    "route_drain",
    "ChargingScheduler",
    "ChargingStation",
    "place_stations",
    "Simulation",
    "SimulationResult",
    "run_day",
]
