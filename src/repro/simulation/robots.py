"""Robot fleet state and idle-robot dispatching.

Robots are free-moving agents that execute planned routes.  Idle robots
park at their last destination (under a rack after a return stage) and
are treated as non-blocking, following the standard "disappear at
target" convention of online MAPF evaluation (Stern et al. 2019); see
DESIGN.md §3 for the discussion of this assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.exceptions import SimulationError
from repro.types import Grid, manhattan


@dataclass
class Robot:
    """One robot: identifier, current cell, busy horizon.

    ``stalled_until`` is the fault-injection hook: while a stall fault
    is active the robot cannot start (or resume) moving before that
    second, and the engine delays stage handovers accordingly.
    ``slow_until``/``slow_factor`` play the same role for slowdown
    faults: routes overlapping the window are stretched so every move
    takes ``slow_factor`` seconds.  ``stalls`` and ``slowdowns`` count
    the faults that hit this robot over the day.
    """

    robot_id: int
    cell: Grid
    busy_until: int = -1
    tasks_served: int = 0
    stalled_until: int = -1
    stalls: int = 0
    slow_until: int = -1
    slow_factor: int = 1
    slowdowns: int = 0

    def is_idle(self, now: int) -> bool:
        return self.busy_until <= now


class RobotFleet:
    """The warehouse's robots plus nearest-idle dispatching."""

    def __init__(self, home_cells: List[Grid]) -> None:
        if not home_cells:
            raise SimulationError("a fleet needs at least one robot", phase="setup")
        self.robots = [Robot(i, cell) for i, cell in enumerate(home_cells)]

    def __len__(self) -> int:
        return len(self.robots)

    def idle_robots(self, now: int) -> List[Robot]:
        return [r for r in self.robots if r.is_idle(now)]

    def nearest_idle(self, cell: Grid, now: int) -> Optional[Robot]:
        """The idle robot closest (Manhattan) to ``cell``, ties by id."""
        best: Optional[Robot] = None
        best_key = None
        for robot in self.robots:
            if not robot.is_idle(now):
                continue
            key = (manhattan(robot.cell, cell), robot.robot_id)
            if best_key is None or key < best_key:
                best, best_key = robot, key
        return best

    def utilization(self, now: int) -> float:
        """Fraction of robots currently busy."""
        busy = sum(1 for r in self.robots if not r.is_idle(now))
        return busy / len(self.robots)
