"""Deterministic, seeded execution-fault injection.

SRP (and every baseline) plans under the assumption that committed
routes are executed exactly.  Real warehouses disagree: robots stall
(low battery, wheel slip, an operator pause) and cells get transiently
blocked (dropped totes, a human in the aisle).  This module describes
such disturbances as *data* — a :class:`FaultPlan` drawn once from a
seeded RNG — so a disturbed day is exactly reproducible: the same seed
injects the same faults at the same simulated seconds, and an empty
plan leaves the simulation bit-identical to an undisturbed run.

Four fault kinds are modelled, following the recovery literature the
framework targets (context-aware replanning, push-stop-and-replan):

* :class:`StallFault` — a robot freezes in place for ``duration``
  seconds, holding its current cell;
* :class:`BlockageFault` — a free cell becomes impassable for
  ``duration`` seconds;
* :class:`SlowdownFault` — a robot moves at an integer speed factor
  (one grid per ``factor`` seconds) for a window.  The engine keeps
  routes exact-integer by stretching the affected route suffix into a
  deterministic hold/move interleaving — no fractional speeds ever
  enter the stores or collision checks;
* :class:`AisleClosureFault` — a contiguous span of aisle cells is
  closed for a window, committed as a batch of blockage pseudo-routes.

The simulation engine turns each fault into a decommit/replan recovery
via :meth:`repro.core.planner.SRPPlanner.replan_from` (serial mode) or
the joint conflict-cluster recovery of
:mod:`repro.simulation.recovery` (``recovery="joint"``); see
``docs/robustness.md`` for the end-to-end story.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, List, Tuple, Union

from repro.exceptions import SimulationError
from repro.types import Grid

if TYPE_CHECKING:
    from repro.warehouse.matrix import Warehouse


@dataclass(frozen=True)
class StallFault:
    """Robot ``robot_id`` freezes at time ``time`` for ``duration`` s."""

    time: int
    robot_id: int
    duration: int

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise SimulationError(
                f"stall duration must be >= 1, got {self.duration}",
                phase="fault-injection",
            )


@dataclass(frozen=True)
class BlockageFault:
    """Cell ``cell`` is impassable over ``[time, time + duration]``."""

    time: int
    cell: Grid
    duration: int

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise SimulationError(
                f"blockage duration must be >= 1, got {self.duration}",
                phase="fault-injection",
            )


@dataclass(frozen=True)
class SlowdownFault:
    """Robot ``robot_id`` runs at speed ``1/factor`` over a window.

    Over ``[time, time + duration]`` every move the robot makes takes
    ``factor`` seconds instead of one: the engine rewrites the route
    suffix as ``factor - 1`` holds at the source cell followed by the
    move, so geometry stays exact-integer and collision checking is
    unchanged.  ``factor`` must be at least 2 (a factor of 1 would be
    an undetectable no-op and is rejected so plans stay meaningful).
    """

    time: int
    robot_id: int
    factor: int
    duration: int

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise SimulationError(
                f"slowdown duration must be >= 1, got {self.duration}",
                phase="fault-injection",
            )
        if self.factor < 2:
            raise SimulationError(
                f"slowdown factor must be >= 2, got {self.factor}",
                phase="fault-injection",
            )


@dataclass(frozen=True)
class AisleClosureFault:
    """A contiguous aisle span ``cells`` closed over ``[time, time + duration]``.

    The cells must form a straight, gap-free run along one grid axis (a
    partial aisle closure — spilled pallets, maintenance tape).  The
    engine commits each free cell of the span as a blockage pseudo-route
    in one batch, so planning and recovery treat the closure exactly
    like simultaneous cell blockages that expire together.
    """

    time: int
    cells: Tuple[Grid, ...]
    duration: int

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise SimulationError(
                f"closure duration must be >= 1, got {self.duration}",
                phase="fault-injection",
            )
        if not self.cells:
            raise SimulationError(
                "aisle closure needs at least one cell", phase="fault-injection"
            )
        if len(self.cells) > 1:
            rows = [c[0] for c in self.cells]
            cols = [c[1] for c in self.cells]
            if all(r == rows[0] for r in rows):
                run = sorted(cols)
            elif all(c == cols[0] for c in cols):
                run = sorted(rows)
            else:
                raise SimulationError(
                    f"closure cells {self.cells} are not collinear",
                    phase="fault-injection",
                )
            if run != list(range(run[0], run[0] + len(run))):
                raise SimulationError(
                    f"closure cells {self.cells} are not contiguous",
                    phase="fault-injection",
                )


Fault = Union[StallFault, BlockageFault, SlowdownFault, AisleClosureFault]

#: injection order of fault kinds at equal seconds: robot-state faults
#: first (stalls, then slowdowns), then cell faults (blockages, then
#: closures) — the relative order of the original two kinds is
#: unchanged, so pre-existing plans inject identically.
_KIND_RANK = {StallFault: 0, SlowdownFault: 1, BlockageFault: 2, AisleClosureFault: 3}


def _overlaps(a0: int, a1: int, b0: int, b1: int) -> bool:
    """True when the closed windows ``[a0, a1]`` and ``[b0, b1]`` meet."""
    return a0 <= b1 and b0 <= a1


@dataclass
class FaultPlan:
    """A reproducible schedule of execution disturbances.

    Iteration yields faults in time order (robot faults before cell
    faults at equal seconds, then declaration order) — the order the
    engine injects them, so two runs of the same plan disturb
    identically.
    """

    stalls: List[StallFault] = field(default_factory=list)
    blockages: List[BlockageFault] = field(default_factory=list)
    slowdowns: List[SlowdownFault] = field(default_factory=list)
    closures: List[AisleClosureFault] = field(default_factory=list)

    @classmethod
    def empty(cls) -> "FaultPlan":
        """A plan injecting nothing; simulating with it is a no-op."""
        return cls()

    @classmethod
    def generate(
        cls,
        warehouse: Warehouse,
        *,
        n_robots: int,
        day_length: int,
        n_stalls: int = 0,
        n_blockages: int = 0,
        n_slowdowns: int = 0,
        n_closures: int = 0,
        seed: int = 0,
        stall_duration: Tuple[int, int] = (2, 8),
        blockage_duration: Tuple[int, int] = (3, 12),
        slowdown_factor: Tuple[int, int] = (2, 3),
        slowdown_duration: Tuple[int, int] = (4, 12),
        closure_length: Tuple[int, int] = (2, 5),
        closure_duration: Tuple[int, int] = (5, 15),
    ) -> "FaultPlan":
        """Draw a reproducible plan from ``random.Random(seed)``.

        Stall times spread over ``[1, day_length]`` and target uniform
        robots; blockages strike uniform rack-free cells (a blocked rack
        cell would never be traversed anyway).  Stalls and blockages are
        drawn first, in the exact RNG order of earlier releases, so a
        plan requesting only those kinds is bit-identical to one drawn
        before slowdowns and closures existed.  Slowdowns and closures
        are then drawn with bounded rejection-resampling so the result
        always passes :meth:`validate` (no robot is simultaneously
        stalled and slowed, no cell doubly closed).
        """
        if n_robots < 1:
            raise SimulationError(
                "fault generation needs at least one robot", phase="fault-injection"
            )
        rng = random.Random(seed)
        stalls = [
            StallFault(
                time=rng.randint(1, max(1, day_length)),
                robot_id=rng.randrange(n_robots),
                duration=rng.randint(*stall_duration),
            )
            for _ in range(n_stalls)
        ]
        free = warehouse.free_cells()
        blockages = [
            BlockageFault(
                time=rng.randint(1, max(1, day_length)),
                cell=rng.choice(free),
                duration=rng.randint(*blockage_duration),
            )
            for _ in range(n_blockages)
        ]
        slowdowns: List[SlowdownFault] = []
        robot_windows = [(f.robot_id, f.time, f.time + f.duration) for f in stalls]
        for _ in range(n_slowdowns):
            fault = None
            for _attempt in range(64):
                t = rng.randint(1, max(1, day_length))
                robot = rng.randrange(n_robots)
                d = rng.randint(*slowdown_duration)
                if all(
                    robot != r or not _overlaps(t, t + d, w0, w1)
                    for r, w0, w1 in robot_windows
                ):
                    fault = SlowdownFault(
                        time=t,
                        robot_id=robot,
                        factor=rng.randint(*slowdown_factor),
                        duration=d,
                    )
                    break
            if fault is None:
                raise SimulationError(
                    f"could not place slowdown {len(slowdowns) + 1}/{n_slowdowns} "
                    "without overlapping an existing robot fault window",
                    phase="fault-validation",
                )
            slowdowns.append(fault)
            robot_windows.append(
                (fault.robot_id, fault.time, fault.time + fault.duration)
            )
        closures: List[AisleClosureFault] = []
        cell_windows = [(f.cell, f.time, f.time + f.duration) for f in blockages]
        for _ in range(n_closures):
            fault = None
            for _attempt in range(64):
                seed_cell = rng.choice(free)
                step = (0, 1) if rng.randrange(2) == 0 else (1, 0)
                length = rng.randint(*closure_length)
                t = rng.randint(1, max(1, day_length))
                d = rng.randint(*closure_duration)
                cells = [seed_cell]
                cur = seed_cell
                while len(cells) < length:
                    nxt = (cur[0] + step[0], cur[1] + step[1])
                    if not warehouse.in_bounds(nxt) or warehouse.is_rack(nxt):
                        break
                    cells.append(nxt)
                    cur = nxt
                if all(
                    cell not in cells or not _overlaps(t, t + d, w0, w1)
                    for cell, w0, w1 in cell_windows
                ):
                    fault = AisleClosureFault(time=t, cells=tuple(cells), duration=d)
                    break
            if fault is None:
                raise SimulationError(
                    f"could not place closure {len(closures) + 1}/{n_closures} "
                    "without overlapping an existing cell fault window",
                    phase="fault-validation",
                )
            closures.append(fault)
            cell_windows.extend(
                (cell, fault.time, fault.time + fault.duration) for cell in fault.cells
            )
        plan = cls(
            sorted(stalls, key=lambda f: f.time),
            sorted(blockages, key=lambda f: f.time),
            sorted(slowdowns, key=lambda f: f.time),
            sorted(closures, key=lambda f: f.time),
        )
        plan.validate()
        return plan

    def validate(self) -> None:
        """Reject fault combinations with undefined engine behaviour.

        The original kinds are unrestricted: overlapping stalls on one
        robot merge via ``max`` and overlapping blockages on one cell
        are independent reservations, both long-defined.  The richer
        kinds are not composable that way — a robot cannot be frozen
        *and* moving slowly (or moving at two speed factors), and a
        closure landing on an already-blocked cell would double-commit
        the cell's presence — so those overlaps raise a
        :class:`SimulationError` naming the colliding windows.
        """
        robot_windows = [
            ("stall", f.robot_id, f.time, f.time + f.duration) for f in self.stalls
        ] + [
            ("slowdown", f.robot_id, f.time, f.time + f.duration)
            for f in self.slowdowns
        ]
        for i, (kind_a, robot_a, a0, a1) in enumerate(robot_windows):
            for kind_b, robot_b, b0, b1 in robot_windows[i + 1:]:
                if "slowdown" not in (kind_a, kind_b):
                    continue
                if robot_a == robot_b and _overlaps(a0, a1, b0, b1):
                    raise SimulationError(
                        f"overlapping {kind_a}/{kind_b} faults target robot "
                        f"{robot_a} over [{max(a0, b0)}, {min(a1, b1)}]; a robot "
                        "cannot hold two speed states at once",
                        release_time=max(a0, b0),
                        phase="fault-validation",
                    )
        cell_windows = [
            ("blockage", f.cell, f.time, f.time + f.duration) for f in self.blockages
        ] + [
            ("closure", cell, f.time, f.time + f.duration)
            for f in self.closures
            for cell in f.cells
        ]
        for i, (kind_a, cell_a, a0, a1) in enumerate(cell_windows):
            for kind_b, cell_b, b0, b1 in cell_windows[i + 1:]:
                if "closure" not in (kind_a, kind_b):
                    continue
                if cell_a == cell_b and _overlaps(a0, a1, b0, b1):
                    raise SimulationError(
                        f"overlapping {kind_a}/{kind_b} faults close cell "
                        f"{cell_a} over [{max(a0, b0)}, {min(a1, b1)}]",
                        release_time=max(a0, b0),
                        phase="fault-validation",
                    )

    def __iter__(self) -> Iterator[Fault]:
        return iter(
            sorted(
                [*self.stalls, *self.slowdowns, *self.blockages, *self.closures],
                key=lambda f: (f.time, _KIND_RANK[type(f)]),
            )
        )

    def __len__(self) -> int:
        return (
            len(self.stalls)
            + len(self.blockages)
            + len(self.slowdowns)
            + len(self.closures)
        )

    def __bool__(self) -> bool:
        return len(self) > 0
