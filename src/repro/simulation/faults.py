"""Deterministic, seeded execution-fault injection.

SRP (and every baseline) plans under the assumption that committed
routes are executed exactly.  Real warehouses disagree: robots stall
(low battery, wheel slip, an operator pause) and cells get transiently
blocked (dropped totes, a human in the aisle).  This module describes
such disturbances as *data* — a :class:`FaultPlan` drawn once from a
seeded RNG — so a disturbed day is exactly reproducible: the same seed
injects the same faults at the same simulated seconds, and an empty
plan leaves the simulation bit-identical to an undisturbed run.

Two fault kinds are modelled, following the recovery literature the
framework targets (context-aware replanning, push-stop-and-replan):

* :class:`StallFault` — a robot freezes in place for ``duration``
  seconds, holding its current cell;
* :class:`BlockageFault` — a free cell becomes impassable for
  ``duration`` seconds.

The simulation engine turns each fault into a decommit/replan recovery
via :meth:`repro.core.planner.SRPPlanner.replan_from`; see
``docs/robustness.md`` for the end-to-end story.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple, Union

from repro.exceptions import SimulationError
from repro.types import Grid


@dataclass(frozen=True)
class StallFault:
    """Robot ``robot_id`` freezes at time ``time`` for ``duration`` s."""

    time: int
    robot_id: int
    duration: int

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise SimulationError(
                f"stall duration must be >= 1, got {self.duration}",
                phase="fault-injection",
            )


@dataclass(frozen=True)
class BlockageFault:
    """Cell ``cell`` is impassable over ``[time, time + duration]``."""

    time: int
    cell: Grid
    duration: int

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise SimulationError(
                f"blockage duration must be >= 1, got {self.duration}",
                phase="fault-injection",
            )


Fault = Union[StallFault, BlockageFault]


@dataclass
class FaultPlan:
    """A reproducible schedule of execution disturbances.

    Iteration yields faults in time order (stalls before blockages at
    equal seconds, then declaration order) — the order the engine
    injects them, so two runs of the same plan disturb identically.
    """

    stalls: List[StallFault] = field(default_factory=list)
    blockages: List[BlockageFault] = field(default_factory=list)

    @classmethod
    def empty(cls) -> "FaultPlan":
        """A plan injecting nothing; simulating with it is a no-op."""
        return cls()

    @classmethod
    def generate(
        cls,
        warehouse,
        *,
        n_robots: int,
        day_length: int,
        n_stalls: int = 0,
        n_blockages: int = 0,
        seed: int = 0,
        stall_duration: Tuple[int, int] = (2, 8),
        blockage_duration: Tuple[int, int] = (3, 12),
    ) -> "FaultPlan":
        """Draw a reproducible plan from ``random.Random(seed)``.

        Stall times spread over ``[1, day_length]`` and target uniform
        robots; blockages strike uniform rack-free cells (a blocked rack
        cell would never be traversed anyway).
        """
        if n_robots < 1:
            raise SimulationError(
                "fault generation needs at least one robot", phase="fault-injection"
            )
        rng = random.Random(seed)
        stalls = [
            StallFault(
                time=rng.randint(1, max(1, day_length)),
                robot_id=rng.randrange(n_robots),
                duration=rng.randint(*stall_duration),
            )
            for _ in range(n_stalls)
        ]
        free = warehouse.free_cells()
        blockages = [
            BlockageFault(
                time=rng.randint(1, max(1, day_length)),
                cell=rng.choice(free),
                duration=rng.randint(*blockage_duration),
            )
            for _ in range(n_blockages)
        ]
        return cls(sorted(stalls, key=lambda f: f.time),
                   sorted(blockages, key=lambda f: f.time))

    def __iter__(self) -> Iterator[Fault]:
        return iter(
            sorted(
                [*self.stalls, *self.blockages],
                key=lambda f: (f.time, isinstance(f, BlockageFault)),
            )
        )

    def __len__(self) -> int:
        return len(self.stalls) + len(self.blockages)

    def __bool__(self) -> bool:
        return len(self) > 0
