"""Deterministic integer battery model for the simulated fleet.

The paper's evaluation assumes robots with unlimited energy; real AMR
fleets interleave delivery legs with charge detours.  This module is
the *accounting* half of that axis: a frozen :class:`BatterySpec`
(capacity, per-move and per-hold drain, the low-charge threshold that
triggers a charge trip, and the station charge rate — all integers)
plus :class:`FleetEnergy`, the per-robot charge ledger the engine
drains as routes execute.

Everything here is exact integer arithmetic over committed
:class:`~repro.types.Route` objects, so a seeded charging day replays
bit-identically — this module is inside srplint's SRP003 determinism
scope.  The *scheduling* half (stations, reservations, admission) lives
in :mod:`repro.simulation.charging`; the closed loop (routes drain
batteries, batteries trigger new routes) is closed by the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.exceptions import SimulationError
from repro.types import Route


@dataclass(frozen=True)
class BatterySpec:
    """Integer battery parameters shared by every robot in the fleet.

    Attributes:
        capacity: charge units a full battery holds.
        move_drain: units drained per one-cell move (one second).
        hold_drain: units drained per second spent holding in place
            while executing a route (waits planned around traffic,
            recovery holds, slowdown stretches).  Idle parking between
            stages does not drain — parked robots power down.
        low_threshold: a robot whose charge is at or below this level
            heads to a charging station as soon as it goes idle, and is
            not assigned further tasks until recharged.
        critical_threshold: charge level at or below which the robot's
            charge trip is *critical*: its planning requests ride the
            going-to-charge admission tier and must never be shed while
            idle-tier requests queue (see ``service/core.py``).
        charge_rate: units restored per second docked at a station pad.
    """

    capacity: int = 2000
    move_drain: int = 2
    hold_drain: int = 1
    low_threshold: int = 500
    critical_threshold: int = 200
    charge_rate: int = 40

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise SimulationError("battery capacity must be positive", phase="setup")
        if self.move_drain < 0 or self.hold_drain < 0:
            raise SimulationError("drain rates must be non-negative", phase="setup")
        if self.move_drain == 0 and self.hold_drain == 0:
            raise SimulationError(
                "at least one of move_drain/hold_drain must be positive "
                "(a drain-free battery never triggers a charge trip)",
                phase="setup",
            )
        if not 0 < self.low_threshold < self.capacity:
            raise SimulationError(
                f"low_threshold {self.low_threshold} must be inside "
                f"(0, capacity={self.capacity})",
                phase="setup",
            )
        if not 0 <= self.critical_threshold <= self.low_threshold:
            raise SimulationError(
                f"critical_threshold {self.critical_threshold} must be inside "
                f"[0, low_threshold={self.low_threshold}]",
                phase="setup",
            )
        if self.charge_rate < 1:
            raise SimulationError("charge_rate must be positive", phase="setup")

    def charge_duration(self, charge: int) -> int:
        """Seconds to fill a battery holding ``charge`` units (ceil)."""
        deficit = max(0, self.capacity - charge)
        return -(-deficit // self.charge_rate)


def route_drain(route: Route, spec: BatterySpec, until: Optional[int] = None) -> int:
    """Exact charge drained executing ``route`` up to second ``until``.

    Walks the route's unit-speed trajectory over
    ``[start_time, min(until, finish_time)]`` and charges ``move_drain``
    for every second the position changes and ``hold_drain`` for every
    second it does not.  ``until=None`` covers the whole route.  Pure
    and deterministic: same route, same spec, same drain, always.
    """
    end = route.finish_time if until is None else min(until, route.finish_time)
    drain = 0
    here = route.position_at(route.start_time)
    for t in range(route.start_time, end):
        there = route.position_at(t + 1)
        drain += spec.move_drain if there != here else spec.hold_drain
        here = there
    return drain


class FleetEnergy:
    """The per-robot charge ledger the engine drains as routes execute.

    Charges are plain integers indexed by robot id; every mutation goes
    through :meth:`drain` / :meth:`refill` so the total drained, the
    stranded set and the trip trigger all stay consistent.  A robot is
    *stranded* once its charge reaches zero — a modelling failure (the
    thresholds were too tight for the workload), counted loudly and
    asserted zero by the CI charging smoke.
    """

    def __init__(self, spec: BatterySpec, n_robots: int) -> None:
        if n_robots < 1:
            raise SimulationError("a fleet needs at least one robot", phase="setup")
        self.spec = spec
        self.charge: List[int] = [spec.capacity] * n_robots
        self.total_drained = 0
        #: robot ids whose charge hit zero, in the order it happened
        self.stranded_ids: List[int] = []

    def __len__(self) -> int:
        return len(self.charge)

    # -- accounting ----------------------------------------------------
    def drain(self, robot_id: int, amount: int) -> None:
        """Drain ``amount`` units; clamps at zero and records stranding."""
        if amount <= 0:
            return
        level = self.charge[robot_id]
        spent = min(level, amount)
        self.charge[robot_id] = level - spent
        self.total_drained += spent
        if level > 0 and self.charge[robot_id] == 0:
            self.stranded_ids.append(robot_id)

    def drain_route(
        self, robot_id: int, route: Route, until: Optional[int] = None
    ) -> int:
        """Drain the exact cost of ``route`` (up to ``until``); returns it."""
        cost = route_drain(route, self.spec, until)
        self.drain(robot_id, cost)
        return cost

    def refill(self, robot_id: int) -> None:
        """Set the battery back to full capacity (charge completed)."""
        self.charge[robot_id] = self.spec.capacity

    # -- queries -------------------------------------------------------
    def needs_charge(self, robot_id: int) -> bool:
        """True when the robot should head to a station once idle."""
        return self.charge[robot_id] <= self.spec.low_threshold

    def is_critical(self, robot_id: int) -> bool:
        """True when the robot's charge trip is admission-critical."""
        return self.charge[robot_id] <= self.spec.critical_threshold

    def is_stranded(self, robot_id: int) -> bool:
        return self.charge[robot_id] == 0

    def charge_duration(self, robot_id: int) -> int:
        """Seconds of docking needed to refill this robot's battery."""
        return self.spec.charge_duration(self.charge[robot_id])
