"""Joint multi-robot recovery over conflict clusters.

PR 2's recovery replans disturbed robots *one at a time*: each replan
holds the robot in place and plans around everyone else's committed
suffixes — including suffixes that are themselves doomed and about to
be replanned.  Under dense faults this cascades: robot A plans around
B's stale route, B's recovery then invalidates A's fresh plan, and both
burn ladder attempts and decommits round after round.

This module implements the joint alternative (``recovery="joint"``),
following the context-aware replanning literature ("Context-Aware Route
Planning", Hvězda et al.; "Push, Stop, and Replan"):

1. **cluster** — the not-yet-executed route suffixes of all in-flight
   robots (plus blockage windows, and forced holds for robots pinned by
   a stall) are conflict-checked pairwise; the conflict graph's
   connected components (union-find) are the *conflict clusters*.
   Robots in no cluster keep their routes untouched.
2. **joint decommit** — every cluster member's suffix is stripped back
   to its executed prefix first
   (:meth:`~repro.core.planner.SRPPlanner.decommit_for_recovery`), so
   nobody plans around a doomed suffix.
3. **prioritised replanning** — members replan sequentially in
   deterministic priority order (carrying robots before in-transit
   pickups before anything else, ties by robot id) via
   ``replan_from(..., decommitted=True)``.
4. **CBS escalation** — if any member's ladder fails, the whole cluster
   is re-decommitted and solved jointly with conflict-based search
   (:func:`repro.baselines.cbs.solve_conflict_cluster`) against the
   live segment stores.
5. **serial fallback** — if CBS exhausts its budget too, the cluster
   falls back to PR 2's serial hold-and-replan ladder, which can
   abandon individual tasks (the only phase that can).

Every phase is deterministic, so a seeded disturbed day reproduces
bit-identically.  See ``docs/robustness.md`` for the full story and the
measured serial-vs-joint comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.validate import find_conflicts
from repro.baselines.cbs import ClusterAgent, solve_conflict_cluster
from repro.exceptions import PlanningFailedError, SimulationError
from repro.types import Grid, Route

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.simulation.engine import Simulation, _ActiveTask

#: joint-recovery rounds tried per fault before declaring divergence
#: (mirrors the serial cascade's bound)
_MAX_JOINT_ROUNDS = 32

#: high-level constraint-tree budget for the CBS escalation; clusters
#: are small (typically 2-5 robots), so a modest budget either solves
#: them or proves the instance needs the serial fallback quickly
_CBS_MAX_NODES = 256


def stretch_route_suffix(route: Route, now: int, factor: int, until: int) -> Route:
    """The suffix of ``route`` after ``now``, slowed to ``1/factor`` speed.

    Every move of the original route departing (in stretched time)
    before ``until`` is rewritten as ``factor - 1`` holds at the source
    cell followed by the move; waits and moves departing at or after
    ``until`` keep their one-second duration.  The result starts at the
    committed anchor ``max(now, route.start_time)`` and visits the same
    cells in the same order, so it is exactly the disturbed robot's
    physically slowed execution — still one grid per second in the
    representation, hence exact-integer everywhere.

    Pure and deterministic: same inputs, same route, always.
    """
    if factor < 2:
        raise SimulationError(
            f"slowdown factor must be >= 2, got {factor}", phase="fault-injection"
        )
    anchor = max(now, route.start_time)
    grids: List[Grid] = [route.position_at(anchor)]
    t = anchor
    for step in range(anchor, route.finish_time):
        here = route.position_at(step)
        there = route.position_at(step + 1)
        if there != here and t < until:
            grids.extend([here] * (factor - 1))
            grids.append(there)
            t += factor
        else:
            grids.append(there)
            t += 1
    return Route(anchor, grids, query_id=route.query_id)


def recovery_priority(active: "_ActiveTask") -> Tuple[int, int, int]:
    """Deterministic replanning order inside a cluster.

    The fleet's three-tier priority ordering: carrying robots
    (transmission/return stages, a rack on board) go first, charge-trip
    legs second (a low battery is urgent but a rack on board is more
    so), in-transit pickups and everything else last; ties break by
    robot id, then by query id (a robot briefly owning two in-flight
    stages recovers the earlier stage first).  On runs without the
    battery axis no charging legs exist and the order is unchanged.
    """
    if getattr(active, "charging", False):
        rank = 1
    elif active.stage == 0:
        rank = 2
    else:
        rank = 0
    return (rank, active.robot.robot_id, active.query_id)


def build_clusters(
    suffixes: Sequence[Route],
    owners: Sequence[Optional["_ActiveTask"]],
    must_recover: Iterable[int] = (),
) -> List[List["_ActiveTask"]]:
    """Group conflicting route suffixes into recovery clusters.

    ``suffixes[i]`` belongs to ``owners[i]`` (None marks a blockage
    pseudo-route — it joins components but is never recovered).  A
    robot is clustered when its component contains at least one
    conflict, or when its query id appears in ``must_recover`` (robots
    pinned by a stall must be replanned even if nothing collides with
    their forced hold).  Clusters come back ordered by their smallest
    (robot id, query id) member, members unordered.
    """
    parent = list(range(len(suffixes)))

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    conflicts = find_conflicts(list(suffixes))
    for conflict in conflicts:
        ra, rb = find(conflict.route_a), find(conflict.route_b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)
    conflicted = {find(c.route_a) for c in conflicts}
    forced = set(must_recover)
    grouped: Dict[int, List["_ActiveTask"]] = {}
    for idx, owner in enumerate(owners):
        if owner is None:
            continue
        root = find(idx)
        if root in conflicted or owner.query_id in forced:
            grouped.setdefault(root, []).append(owner)
    return sorted(
        grouped.values(),
        key=lambda group: min((a.robot.robot_id, a.query_id) for a in group),
    )


@dataclass
class _Member:
    """One cluster member's recovery inputs, captured before decommit."""

    active: "_ActiveTask"
    cell: Grid  # where the robot stands at the fault second
    hold: int  # earliest second it may move again
    anchor: int  # second its standing presence is claimable from (the
    # committed anchor; the delayed departure itself when parked)
    destination: Grid  # original stage destination


def resolve_joint(
    sim: "Simulation",
    now: int,
    events: List[Tuple[int, int, int, Any]],
    forced: Sequence[Tuple["_ActiveTask", Grid, int]] = (),
) -> None:
    """Joint counterpart of the engine's serial recovery cascade.

    ``forced`` lists robots pinned in place by the triggering fault as
    ``(active, cell, hold_until)``: their committed suffixes are stale
    (they physically cannot execute them), so the clusterer represents
    them as holds at their stop cells and recovers them unconditionally
    in the first round.

    Only the *first* round clusters: it absorbs the disturbance itself.
    Conflicts surviving into later rounds stem from blind forced holds
    a recovery had to commit (a pinned robot that cannot depart for a
    long time overlaps routes already replanned around its shorter
    guaranteed hold) — re-clustering those would re-decommit the holder
    and erase exactly the information its victims must plan around, so
    the cascade would chase the same conflict forever.  Later rounds
    therefore replan each conflicting robot serially against the *full*
    committed state, the serial cascade's provably convergent scheme —
    and share its divergence bound.
    """
    pending: Dict[int, Tuple["_ActiveTask", Grid, int]] = {
        active.query_id: (active, cell, hold) for active, cell, hold in forced
    }
    last_size: Optional[int] = None
    for _round in range(_MAX_JOINT_ROUNDS):
        sim._active_blockages = [
            b for b in sim._active_blockages if b.time + b.duration >= now
        ]
        suffixes: List[Route] = []
        owners: List[Optional["_ActiveTask"]] = []
        for active in sim._executing.values():
            route = active.route
            if route is None:
                continue
            entry = pending.get(active.query_id)
            if entry is not None:
                # Pinned by the fault: what the stores will actually see
                # is a hold at the stop cell until the fault clears, so
                # cluster against that rather than the stale suffix.
                _active, cell, hold = entry
                start = max(now, route.start_time)
                suffixes.append(
                    Route(start, [cell] * (hold - start + 1), query_id=active.query_id)
                )
                owners.append(active)
                continue
            if route.finish_time <= now:
                continue
            # Occupancy follows the validator's convention: a route
            # claims grids over [start_time, finish_time] only.
            start = max(now, route.start_time)
            grids = [
                route.position_at(t) for t in range(start, route.finish_time + 1)
            ]
            suffixes.append(Route(start, grids, query_id=active.query_id))
            owners.append(active)
        for blockage in sim._active_blockages:
            start = max(blockage.time, now)
            span = blockage.time + blockage.duration - start + 1
            suffixes.append(Route(start, [blockage.cell] * span))
            owners.append(None)
        if _round == 0:
            clusters = build_clusters(suffixes, owners, must_recover=pending)
            if not clusters:
                return
            for group in clusters:
                live = [a for a in group if a.query_id in sim._executing]
                if not live:
                    continue
                _recover_cluster(sim, live, pending, now, events)
                last_size = len(live)
            pending = {}
            continue
        disturbed: Dict[int, "_ActiveTask"] = {}
        for conflict in find_conflicts(list(suffixes)):
            for idx in (conflict.route_a, conflict.route_b):
                owner = owners[idx]
                if owner is not None:
                    disturbed[owner.query_id] = owner
        if not disturbed:
            return
        for active in sorted(disturbed.values(), key=recovery_priority):
            if active.query_id not in sim._executing:
                continue  # its recovery failed earlier this round
            cell = active.route.position_at(now)
            sim._replan_execution(
                active,
                cell,
                now,
                hold_until=max(now + 1, active.robot.stalled_until),
                events=events,
            )
    raise SimulationError(
        "joint recovery cascade did not converge within "
        f"{_MAX_JOINT_ROUNDS} rounds",
        release_time=now,
        phase="recovery-cascade",
        cluster_size=last_size,
        strategy="joint",
    )


def _recover_cluster(
    sim: "Simulation",
    group: List["_ActiveTask"],
    pending: Dict[int, Tuple["_ActiveTask", Grid, int]],
    now: int,
    events: List[Tuple[int, int, int, Any]],
) -> Dict[str, object]:
    """Recover one conflict cluster: prioritised -> CBS -> serial ladder."""
    planner = sim.planner
    stats = getattr(planner, "stats", None)
    members: List[_Member] = []
    for active in sorted(group, key=recovery_priority):
        route = active.route
        cell = route.position_at(now)
        anchor = max(now, route.start_time)
        hold = max(now + 1, active.robot.stalled_until)
        entry = pending.get(active.query_id)
        if entry is not None:
            hold = max(hold, entry[2])
        # Claims never extend backward past the committed start, so no
        # recovery may depart before the anchor; a *parked* member
        # (disturbed before departure) additionally gets no standing
        # pad at all — parked presence is unreserved (DESIGN.md §4).
        hold = max(hold, anchor)
        stand = anchor if now >= route.start_time else hold
        members.append(_Member(active, cell, hold, stand, route.destination))
    size = len(members)
    sim.recovery_clusters += 1
    sim.cluster_robots += size
    sim.max_cluster_size = max(sim.max_cluster_size, size)
    if stats is not None:
        stats.recovery_clusters += 1
        stats.cluster_robots += size

    # Joint decommit: strip every member to its executed prefix, then
    # immediately re-commit its forced hold as standing presence — a
    # decommitted robot still physically occupies its stop cell until
    # its hold clears, and members replanned earlier must route around
    # it or the cascade chases the same conflict forever.
    decommits = 0
    for member in members:
        decommits += planner.decommit_for_recovery(member.active.query_id, member.cell, now)
        planner.commit_recovery_hold(  # srplint: allow(SRP008) hold spans the phase loops; a mid-recovery exception aborts the whole replay, so there is no later run to leak into
            member.active.query_id, member.cell, now, member.hold
        )
    sim._apply_revisions()

    # Phase 1: prioritised sequential replanning over the clean state.
    planned: List[Tuple[_Member, Route]] = []
    escalate = False
    for member in members:
        planner.release_recovery_hold(member.active.query_id)
        try:
            revised = planner.replan_from(
                member.active.query_id,
                member.cell,
                now,
                hold_until=member.hold,
                decommitted=True,
            )
        except PlanningFailedError:
            sim._apply_revisions()
            escalate = True
            break
        sim._apply_revisions()
        planned.append((member, revised))
    if not escalate:
        for member, revised in planned:
            sim.replans += 1
            sim._install_revision(member.active, revised, events)
        return _log_cluster(sim, now, members, "prioritised", decommits)

    # Phase 2: CBS over the whole cluster against the live stores.  The
    # re-decommit normalises partial phase-1 state (committed replans,
    # residual failure holds, outstanding pre-holds) back to executed
    # prefixes; CBS models the standing spans itself via ``stand_from``.
    sim.recovery_cbs += 1
    if stats is not None:
        stats.cbs_escalations += 1
    for member in members:
        planner.release_recovery_hold(member.active.query_id)
        decommits += planner.decommit_for_recovery(member.active.query_id, member.cell, now)
    sim._apply_revisions()
    agents = [
        ClusterAgent(
            query_id=member.active.query_id,
            origin=member.cell,
            destination=member.destination,
            release=member.hold,
            stand_from=member.anchor,
        )
        for member in members
    ]
    routes = solve_conflict_cluster(
        sim.warehouse,
        agents,
        planner.distance_maps,
        base_checker=planner.recovery_checker(),
        max_nodes=_CBS_MAX_NODES,
    )
    if routes is not None:
        for member, route in zip(members, routes):
            revised = planner.commit_recovered_route(
                member.active.query_id, member.cell, now, route
            )
            sim._apply_revisions()
            sim.replans += 1
            sim._install_revision(member.active, revised, events)
        return _log_cluster(sim, now, members, "cbs", decommits)

    # Phase 3: PR 2's serial hold-and-replan ladder, the only phase
    # allowed to abandon tasks.
    sim.recovery_serial += 1
    if stats is not None:
        stats.serial_fallbacks += 1
    context = {"cluster_size": size, "strategy": "serial", "decommits": decommits}
    for member in members:
        if member.active.query_id in sim._executing:
            planner.commit_recovery_hold(  # srplint: allow(SRP008) pre-holds span the serial ladder loop; a mid-recovery exception aborts the whole replay
                member.active.query_id, member.cell, now, member.hold
            )
    for member in members:
        if member.active.query_id not in sim._executing:
            continue
        planner.release_recovery_hold(member.active.query_id)
        sim._replan_execution(
            member.active,
            member.cell,
            now,
            hold_until=member.hold,
            events=events,
            decommitted=True,
            context=context,
        )
    return _log_cluster(sim, now, members, "serial", decommits)


def _log_cluster(
    sim: "Simulation",
    now: int,
    members: List[_Member],
    strategy: str,
    decommits: int,
) -> Dict[str, object]:
    event: Dict[str, object] = {
        "time": now,
        "event": "cluster-recovered",
        "size": len(members),
        "robots": [m.active.robot.robot_id for m in members],
        "strategy": strategy,
        "decommits": decommits,
    }
    sim._log_recovery_event(event)
    return event
