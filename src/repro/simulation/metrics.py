"""Metric recording: the paper's OG, TC and MC over task progress.

*OG* (optimization goal) is the makespan of Eq. (1).  *TC* is the
cumulative wall-clock planning time of the algorithm.  *MC* is the deep
size of the planner's traffic-scaling data structures.  The figures of
the paper plot TC and MC against *progress*, "the ratio between the
finished tasks and all tasks of the day"; snapshots here are taken at
fixed progress increments (2% in the paper's snapshot comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.sizeof import deep_sizeof
from repro.planner_base import Planner


@dataclass(frozen=True)
class ProgressSnapshot:
    """One sampled point of the Figs. 16-21 curves."""

    progress: float  # finished / total tasks, in [0, 1]
    sim_time: int  # warehouse clock when the snapshot was taken
    tc_seconds: float  # cumulative planning wall time so far
    mc_bytes: Optional[int]  # deep size of planner state (None = not sampled)


@dataclass
class SimulationMetrics:
    """Collects snapshots and end-of-day aggregates during a run.

    ``memory_every`` throttles the (expensive) deep-sizeof MC samples to
    a coarser progress grid than the cheap TC samples.
    """

    total_tasks: int
    snapshot_every: float = 0.02
    measure_memory: bool = True
    memory_every: float = 0.1
    snapshots: List[ProgressSnapshot] = field(default_factory=list)
    _next_snapshot: float = 0.0
    _next_memory: float = 0.0

    def maybe_snapshot(self, finished: int, now: int, planner: Planner) -> None:
        """Record a snapshot when progress crossed the next threshold."""
        progress = finished / self.total_tasks
        if progress + 1e-12 < self._next_snapshot:
            return
        mc = None
        if self.measure_memory and progress + 1e-12 >= self._next_memory:
            mc = deep_sizeof(planner.planning_state())
            while self._next_memory <= progress + 1e-12:
                self._next_memory += self.memory_every
        self.snapshots.append(
            ProgressSnapshot(progress, now, planner.timers.total, mc)
        )
        while self._next_snapshot <= progress + 1e-12:
            self._next_snapshot += self.snapshot_every

    def tc_series(self) -> List[Tuple[float, float]]:
        """(progress, cumulative TC seconds) pairs for Figs. 16-18."""
        return [(s.progress, s.tc_seconds) for s in self.snapshots]

    def mc_series(self) -> List[Tuple[float, Optional[int]]]:
        """(progress, MC bytes) pairs for Figs. 19-21."""
        return [(s.progress, s.mc_bytes) for s in self.snapshots if s.mc_bytes is not None]

    def peak_mc(self) -> Optional[int]:
        values = [s.mc_bytes for s in self.snapshots if s.mc_bytes is not None]
        return max(values) if values else None
