"""Task-to-robot dispatching strategies.

The CARP paper takes task assignment as given (its reference [6] covers
adaptive task planning); the simulator needs *some* policy to turn the
task stream into robot work.  Two are provided:

* :class:`NearestIdleDispatcher` — FIFO over tasks, each matched to the
  idle robot closest to its rack (the common greedy baseline);
* :class:`HungarianDispatcher` — jointly optimal assignment of the
  waiting tasks to idle robots minimising total approach distance, via
  ``scipy.optimize.linear_sum_assignment``.

Both return (task, robot) pairs; the engine plans and executes them.
"""

from __future__ import annotations

from typing import List, Protocol, Sequence, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.simulation.robots import Robot, RobotFleet
from repro.types import Task, manhattan


class Dispatcher(Protocol):
    """Chooses which waiting tasks start now, and on which robots."""

    def assign(
        self, waiting: Sequence[Task], fleet: RobotFleet, now: int
    ) -> List[Tuple[Task, Robot]]:
        """Return (task, robot) pairs to start; leftovers keep waiting.

        Every returned robot must be idle at ``now`` and distinct.
        """


class NearestIdleDispatcher:
    """FIFO tasks, nearest idle robot each — the greedy default."""

    def assign(
        self, waiting: Sequence[Task], fleet: RobotFleet, now: int
    ) -> List[Tuple[Task, Robot]]:
        assignments: List[Tuple[Task, Robot]] = []
        taken = set()
        for task in waiting:
            best = None
            best_key = None
            for robot in fleet.robots:
                if robot.robot_id in taken or not robot.is_idle(now):
                    continue
                key = (manhattan(robot.cell, task.rack), robot.robot_id)
                if best_key is None or key < best_key:
                    best, best_key = robot, key
            if best is None:
                break  # no idle robots left; later tasks cannot do better
            taken.add(best.robot_id)
            assignments.append((task, best))
        return assignments


class HungarianDispatcher:
    """Minimise the summed robot-to-rack approach distance jointly.

    When there are more waiting tasks than idle robots, the earliest
    ``len(robots)`` tasks by release time are considered (assigning a
    later task while an earlier one starves would violate the FIFO
    fairness the task stream expects).
    """

    def assign(
        self, waiting: Sequence[Task], fleet: RobotFleet, now: int
    ) -> List[Tuple[Task, Robot]]:
        idle = fleet.idle_robots(now)
        if not idle or not waiting:
            return []
        batch = list(waiting)[: len(idle)]
        cost = np.empty((len(batch), len(idle)), dtype=np.int64)
        for i, task in enumerate(batch):
            for j, robot in enumerate(idle):
                cost[i, j] = manhattan(robot.cell, task.rack)
        rows, cols = linear_sum_assignment(cost)
        return [(batch[i], idle[j]) for i, j in zip(rows, cols)]
