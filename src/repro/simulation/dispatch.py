"""Task-to-robot dispatching strategies.

The CARP paper takes task assignment as given (its reference [6] covers
adaptive task planning); the simulator needs *some* policy to turn the
task stream into robot work.  Two are provided:

* :class:`NearestIdleDispatcher` — FIFO over tasks, each matched to the
  idle robot closest to its rack (the common greedy baseline);
* :class:`HungarianDispatcher` — jointly optimal assignment of the
  waiting tasks to idle robots minimising total approach distance, via
  ``scipy.optimize.linear_sum_assignment``.

Both return (task, robot) pairs; the engine plans and executes them.
Dispatchers see the fleet through the structural :class:`FleetView`
protocol, so the battery axis can interpose a filtered
:class:`FleetState` (robots bound for a charger are hidden from task
assignment — the dispatch-layer leg of the carrying > going-to-charge >
idle priority ordering) without the inner policies knowing.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, Sequence, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.simulation.robots import Robot
from repro.types import Grid, Task, manhattan


class FleetView(Protocol):
    """What a dispatcher needs from a fleet: robots and idleness."""

    @property
    def robots(self) -> Sequence[Robot]:
        """All robots in a fixed, deterministic order."""

    def idle_robots(self, now: int) -> List[Robot]:
        """The robots idle at ``now``, in ``robots`` order."""


class FleetState:
    """A dispatch-facing snapshot of (a subset of) the fleet.

    Built by filters such as :class:`BatteryAwareDispatcher` to hide
    unavailable robots from an inner policy; implements the same
    :class:`FleetView` surface as the engine's ``RobotFleet``.
    """

    def __init__(self, robots: Sequence[Robot]) -> None:
        self.robots: List[Robot] = list(robots)

    def __len__(self) -> int:
        return len(self.robots)

    def idle_robots(self, now: int) -> List[Robot]:
        return [r for r in self.robots if r.is_idle(now)]

    def nearest_idle(self, cell: Grid, now: int) -> Optional[Robot]:
        """The idle robot closest (Manhattan) to ``cell``.

        Distance ties break by robot id, never by iteration order, so
        the choice is deterministic for any robot ordering in the view.
        """
        best: Optional[Robot] = None
        best_key: Optional[Tuple[int, int]] = None
        for robot in self.robots:
            if not robot.is_idle(now):
                continue
            key = (manhattan(robot.cell, cell), robot.robot_id)
            if best_key is None or key < best_key:
                best, best_key = robot, key
        return best


class Dispatcher(Protocol):
    """Chooses which waiting tasks start now, and on which robots."""

    def assign(
        self, waiting: Sequence[Task], fleet: FleetView, now: int
    ) -> List[Tuple[Task, Robot]]:
        """Return (task, robot) pairs to start; leftovers keep waiting.

        Every returned robot must be idle at ``now`` and distinct.
        """


class NearestIdleDispatcher:
    """FIFO tasks, nearest idle robot each — the greedy default."""

    def assign(
        self, waiting: Sequence[Task], fleet: FleetView, now: int
    ) -> List[Tuple[Task, Robot]]:
        assignments: List[Tuple[Task, Robot]] = []
        taken = set()
        for task in waiting:
            best = None
            best_key = None
            for robot in fleet.robots:
                if robot.robot_id in taken or not robot.is_idle(now):
                    continue
                key = (manhattan(robot.cell, task.rack), robot.robot_id)
                if best_key is None or key < best_key:
                    best, best_key = robot, key
            if best is None:
                break  # no idle robots left; later tasks cannot do better
            taken.add(best.robot_id)
            assignments.append((task, best))
        return assignments


class HungarianDispatcher:
    """Minimise the summed robot-to-rack approach distance jointly.

    When there are more waiting tasks than idle robots, the earliest
    ``len(robots)`` tasks by release time are considered (assigning a
    later task while an earlier one starves would violate the FIFO
    fairness the task stream expects).
    """

    def assign(
        self, waiting: Sequence[Task], fleet: FleetView, now: int
    ) -> List[Tuple[Task, Robot]]:
        idle = fleet.idle_robots(now)
        if not idle or not waiting:
            return []
        batch = list(waiting)[: len(idle)]
        cost = np.empty((len(batch), len(idle)), dtype=np.int64)
        for i, task in enumerate(batch):
            for j, robot in enumerate(idle):
                cost[i, j] = manhattan(robot.cell, task.rack)
        rows, cols = linear_sum_assignment(cost)
        return [(batch[i], idle[j]) for i, j in zip(rows, cols)]


class BatteryAwareDispatcher:
    """Hide unavailable robots from an inner dispatch policy.

    The engine interposes this when the battery axis is enabled:
    ``unavailable`` matches robots whose charge is at or below the low
    threshold, so they are never handed delivery tasks while they need
    (or are on) a charge trip — going-to-charge outranks idle work, and
    carrying robots are already excluded by being busy.  The inner
    policy sees a plain :class:`FleetState` and stays oblivious.
    """

    def __init__(
        self, inner: Dispatcher, unavailable: Callable[[Robot], bool]
    ) -> None:
        self.inner = inner
        self.unavailable = unavailable

    def assign(
        self, waiting: Sequence[Task], fleet: FleetView, now: int
    ) -> List[Tuple[Task, Robot]]:
        eligible = FleetState(
            [r for r in fleet.robots if not self.unavailable(r)]
        )
        return self.inner.assign(waiting, eligible, now)
