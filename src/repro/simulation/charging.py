"""Charging stations and the reservation-based charging scheduler.

A :class:`ChargingStation` is three rack-free cells: the *pad* the
robot docks on, an adjacent *queue* cell where it waits for the pad to
free up, and an adjacent *exit* cell it clears to after charging (so
the next robot can dock).  :func:`place_stations` places ``n`` such
stations deterministically on any warehouse; the
:class:`ChargingScheduler` keeps one reservation horizon per pad and
picks, for each charge trip, the station with the **minimum admission
time** — travel estimate (via the planner's strip distance maps, an
admissible lower bound) plus the pad's queue occupancy — following the
station-reservation schemes of the context-aware planning literature
(Hvězda et al.).

The scheduler only decides *which station and when*; the detour itself
is planned through the normal SRP planner by the engine, so every
charge-trip leg is collision-checked and committed like any delivery
route.  Everything here is integer arithmetic over explicit state —
this module is inside srplint's SRP003 determinism scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple

from repro.exceptions import SimulationError
from repro.types import Grid, manhattan
from repro.warehouse.matrix import Warehouse


class DistanceEstimator(Protocol):
    """Anything with an admissible ``distance(origin, target)`` bound."""

    def distance(self, origin: Grid, target: Grid) -> int:
        """Lower bound on the rack-avoiding distance; -1 = unreachable."""


@dataclass(frozen=True)
class ChargingStation:
    """One charging station: pad, queue cell, exit cell.

    The pad is exclusive (enforced by the scheduler's reservations, not
    by route claims — docked robots are standing and standing presence
    is non-blocking, DESIGN.md §4); the queue and exit cells are plain
    floor cells robots route through like any other.
    """

    station_id: int
    cell: Grid
    queue_cell: Grid
    exit_cell: Grid

    def validate(self, warehouse: Warehouse) -> None:
        """Reject stations on racks, out of bounds, or non-adjacent."""
        for label, cell in (
            ("pad", self.cell),
            ("queue cell", self.queue_cell),
            ("exit cell", self.exit_cell),
        ):
            if not warehouse.is_free(cell):
                raise SimulationError(
                    f"station {self.station_id}: {label} {cell} is not a "
                    "rack-free cell",
                    phase="setup",
                )
        for label, cell in (
            ("queue cell", self.queue_cell),
            ("exit cell", self.exit_cell),
        ):
            if manhattan(cell, self.cell) != 1:
                raise SimulationError(
                    f"station {self.station_id}: {label} {cell} is not "
                    f"adjacent to the pad {self.cell}",
                    phase="setup",
                )


def place_stations(warehouse: Warehouse, n: int) -> List[ChargingStation]:
    """Place ``n`` stations deterministically on rack-free cells.

    Candidate pads are free cells with at least two distinct free
    neighbours (queue and exit must differ) that are neither picker
    stations nor robot homes; picked evenly spaced through the
    row-major candidate list so stations spread across the floor.  The
    queue and exit cells are the pad's first two free neighbours in the
    warehouse's fixed neighbour order.  Same warehouse, same ``n``,
    same stations — always.
    """
    if n < 1:
        raise SimulationError("need at least one charging station", phase="setup")
    reserved = set(warehouse.pickers) | set(warehouse.robot_homes)
    candidates: List[Tuple[Grid, Grid, Grid]] = []
    for cell in warehouse.free_cells():
        if cell in reserved:
            continue
        flanks = [
            c for c in warehouse.neighbors(cell) if c not in reserved
        ]
        if len(flanks) < 2:
            continue
        candidates.append((cell, flanks[0], flanks[1]))
    if len(candidates) < n:
        raise SimulationError(
            f"warehouse has only {len(candidates)} station-capable cells, "
            f"cannot place {n} charging stations",
            phase="setup",
        )
    stations: List[ChargingStation] = []
    used = set(reserved)
    stride = max(1, len(candidates) // n)
    # Primary pass: every stride-th candidate (offset to mid-stride) so
    # stations spread across the floor; fill pass: linear scan over the
    # leftovers when overlaps left the primary pass short.
    order = list(range(stride // 2, len(candidates), stride))
    order += [i for i in range(len(candidates)) if i not in set(order)]
    for index in order:
        if len(stations) == n:
            break
        cell, queue_cell, exit_cell = candidates[index]
        if cell in used or queue_cell in used or exit_cell in used:
            continue
        station = ChargingStation(len(stations), cell, queue_cell, exit_cell)
        station.validate(warehouse)
        stations.append(station)
        used.update((cell, queue_cell, exit_cell))
    if len(stations) < n:
        raise SimulationError(
            f"could only place {len(stations)} of {n} non-overlapping "
            "charging stations",
            phase="setup",
        )
    return stations


class ChargingScheduler:
    """Reservation-based minimum-admission-time station selection.

    One integer reservation horizon per pad (``_free_at``): a robot
    reserving the pad pushes the horizon to the end of its estimated
    charge window, and later actual dockings push it further
    (:meth:`occupy`) when congestion made the robot arrive late.  The
    admission time of a candidate station is::

        max(now + travel_estimate, pad_free_at)

    and :meth:`pick` minimises it with deterministic ties (earlier
    arrival estimate first, then smaller station id).  Travel estimates
    use the planner's strip distance maps when available (an admissible
    lower bound on the true rack-avoiding distance, always at least the
    Manhattan distance it falls back to).
    """

    def __init__(
        self,
        stations: Sequence[ChargingStation],
        distance_maps: Optional[DistanceEstimator] = None,
    ) -> None:
        if not stations:
            raise SimulationError(
                "the charging scheduler needs at least one station",
                phase="setup",
            )
        self.stations = list(stations)
        self.distance_maps = distance_maps
        self._free_at: List[int] = [0] * len(self.stations)
        #: charge trips admitted through :meth:`reserve`
        self.trips = 0
        #: total estimated seconds robots spent queueing for busy pads
        self.queue_wait = 0

    # -- estimates -----------------------------------------------------
    def travel_estimate(self, origin: Grid, station: ChargingStation) -> int:
        """Lower bound on the seconds to reach the station's queue cell."""
        best = manhattan(origin, station.queue_cell)
        if self.distance_maps is not None:
            exact = self.distance_maps.distance(origin, station.queue_cell)
            if exact > best:
                best = exact
        return best

    def admission_time(
        self, origin: Grid, station: ChargingStation, now: int
    ) -> Tuple[int, int]:
        """``(admission, arrival_estimate)`` for one candidate station.

        Arrival adds the queue-to-pad docking move to the travel
        estimate; admission is when the pad itself is expected free.
        """
        arrival = now + self.travel_estimate(origin, station) + 1
        return max(arrival, self._free_at[station.station_id]), arrival

    # -- scheduling ----------------------------------------------------
    def pick(self, origin: Grid, now: int) -> Tuple[ChargingStation, int]:
        """The station with the minimum admission time from ``origin``.

        Returns ``(station, admission_time)``; ties break by the
        earlier arrival estimate, then by station id.
        """
        best_station = self.stations[0]
        best_key: Optional[Tuple[int, int, int]] = None
        best_admit = 0
        for station in self.stations:
            admit, arrival = self.admission_time(origin, station, now)
            key = (admit, arrival, station.station_id)
            if best_key is None or key < best_key:
                best_station, best_key, best_admit = station, key, admit
        return best_station, best_admit

    def reserve(
        self, station: ChargingStation, origin: Grid, now: int, duration: int
    ) -> int:
        """Reserve the pad for one trip; returns the admission time.

        ``duration`` is the estimated docking time (seconds to refill
        the battery at the station's rate).  The wait between the
        robot's estimated arrival and its admission is accounted as
        queue wait.
        """
        admit, arrival = self.admission_time(origin, station, now)
        self.queue_wait += admit - arrival
        self._free_at[station.station_id] = admit + duration
        self.trips += 1
        return admit

    def occupy(self, station: ChargingStation, until: int) -> None:
        """Pin the pad as busy until ``until`` (actual docking known).

        Called when a robot's real charge window is fixed: congestion
        can put the true docking later than the reservation estimated,
        and the next :meth:`pick` must not hand the pad out meanwhile.
        """
        sid = station.station_id
        if until > self._free_at[sid]:
            self._free_at[sid] = until

    def free_at(self, station: ChargingStation) -> int:
        """The pad's current reservation horizon (for tests/telemetry)."""
        return self._free_at[station.station_id]
