"""repro — Strip-based collision-aware route planning for warehouses.

A from-scratch reproduction of *"Collision-Aware Route Planning in
Warehouses Made Efficient: A Strip-based Framework"* (ICDE 2023),
including the SRP planner, the grid-based baselines it is compared
against, the warehouse/task substrate, and an online simulation
environment reproducing the paper's evaluation.

Quickstart::

    from repro import Warehouse, SRPPlanner, Query

    wh = Warehouse.from_ascii('''
    ........
    ..##.##.
    ..##.##.
    ........
    ''')
    planner = SRPPlanner(wh)
    route = planner.plan(Query(origin=(0, 0), destination=(3, 7)))
    print(route.grids)
"""

from repro.exceptions import (
    ReproError,
    LayoutError,
    InvalidQueryError,
    PlanningFailedError,
    SimulationError,
    CollisionError,
)
from repro.types import Grid, Query, QueryKind, Route, Task, manhattan
from repro.planner_base import Planner
from repro.warehouse import (
    Warehouse,
    LayoutSpec,
    generate_layout,
    TaskTraceSpec,
    generate_tasks,
)
from repro.warehouse import datasets
from repro.core import SRPPlanner, build_strip_graph, StripGraph
from repro.baselines import (
    SAPPlanner,
    TWPPlanner,
    RPPlanner,
    ACPPlanner,
    make_baseline,
)
from repro.simulation import Simulation, SimulationResult, run_day
from repro.analysis import find_conflicts, assert_collision_free, deep_sizeof

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "LayoutError",
    "InvalidQueryError",
    "PlanningFailedError",
    "SimulationError",
    "CollisionError",
    "Grid",
    "Query",
    "QueryKind",
    "Route",
    "Task",
    "manhattan",
    "Planner",
    "Warehouse",
    "LayoutSpec",
    "generate_layout",
    "TaskTraceSpec",
    "generate_tasks",
    "datasets",
    "SRPPlanner",
    "build_strip_graph",
    "StripGraph",
    "SAPPlanner",
    "TWPPlanner",
    "RPPlanner",
    "ACPPlanner",
    "make_baseline",
    "Simulation",
    "SimulationResult",
    "run_day",
    "find_conflicts",
    "assert_collision_free",
    "deep_sizeof",
    "__version__",
]
