"""repro — Strip-based collision-aware route planning for warehouses.

A from-scratch reproduction of *"Collision-Aware Route Planning in
Warehouses Made Efficient: A Strip-based Framework"* (ICDE 2023),
including the SRP planner, the grid-based baselines it is compared
against, the warehouse/task substrate, and an online simulation
environment reproducing the paper's evaluation.

Quickstart::

    from repro import Warehouse, SRPPlanner, Query

    wh = Warehouse.from_ascii('''
    ........
    ..##.##.
    ..##.##.
    ........
    ''')
    planner = SRPPlanner(wh)
    route = planner.plan(Query(origin=(0, 0), destination=(3, 7)))
    print(route.grids)
"""

from repro.analysis import assert_collision_free, deep_sizeof, find_conflicts
from repro.baselines import ACPPlanner, RPPlanner, SAPPlanner, TWPPlanner, make_baseline
from repro.core import SRPPlanner, StripGraph, build_strip_graph
from repro.exceptions import (
    CollisionError,
    InvalidQueryError,
    LayoutError,
    PlanningFailedError,
    ReproError,
    SimulationError,
)
from repro.planner_base import Planner
from repro.simulation import (
    BatterySpec,
    ChargingScheduler,
    ChargingStation,
    Simulation,
    SimulationResult,
    place_stations,
    run_day,
)
from repro.types import Grid, Query, QueryKind, Route, Task, manhattan
from repro.warehouse import (
    LayoutSpec,
    TaskTraceSpec,
    Warehouse,
    datasets,
    generate_layout,
    generate_tasks,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "LayoutError",
    "InvalidQueryError",
    "PlanningFailedError",
    "SimulationError",
    "CollisionError",
    "Grid",
    "Query",
    "QueryKind",
    "Route",
    "Task",
    "manhattan",
    "Planner",
    "Warehouse",
    "LayoutSpec",
    "generate_layout",
    "TaskTraceSpec",
    "generate_tasks",
    "datasets",
    "SRPPlanner",
    "build_strip_graph",
    "StripGraph",
    "SAPPlanner",
    "TWPPlanner",
    "RPPlanner",
    "ACPPlanner",
    "make_baseline",
    "Simulation",
    "SimulationResult",
    "run_day",
    "BatterySpec",
    "ChargingScheduler",
    "ChargingStation",
    "place_stations",
    "find_conflicts",
    "assert_collision_free",
    "deep_sizeof",
    "__version__",
]
