"""Shared value types for the CARP problem.

The module defines the vocabulary used across the whole package:

* a *grid* is an ``(row, col)`` integer pair (``Grid``);
* a *query* is one origin-destination planning request (:class:`Query`);
* a *route* is the planner's answer: a start time plus one grid per
  timestep (:class:`Route`), following Definition 2 of the paper.

Robots move at unit speed (one grid per second) and may wait by
repeating a grid, so ``route.grids[i]`` is occupied at absolute time
``route.start_time + i``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Tuple

Grid = Tuple[int, int]
"""A warehouse cell as a ``(row, col)`` pair, zero-indexed."""


def manhattan(a: Grid, b: Grid) -> int:
    """Return the Manhattan distance between two grids."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


class QueryKind(enum.Enum):
    """Why a route is requested; one delivery task issues all three."""

    PICKUP = "pickup"
    TRANSMISSION = "transmission"
    RETURN = "return"
    GENERIC = "generic"


@dataclass(frozen=True)
class Query:
    """One origin-destination route planning request.

    Attributes:
        origin: grid the robot starts from.
        destination: grid the robot must reach.
        release_time: timestamp at which the request emerges (and the
            earliest time the robot may start moving).
        kind: which stage of a delivery task this request serves.
        query_id: optional stable identifier for bookkeeping.
    """

    origin: Grid
    destination: Grid
    release_time: int = 0
    kind: QueryKind = QueryKind.GENERIC
    query_id: int = -1

    def lower_bound(self) -> int:
        """Return the collision-free lower bound on route duration."""
        return manhattan(self.origin, self.destination)


@dataclass
class Route:
    """A planned route: ``grids[i]`` is occupied at ``start_time + i``.

    This is the grid-level representation shared by every planner, and
    the representation on which ground-truth collision checks operate.
    """

    start_time: int
    grids: List[Grid]
    query_id: int = -1

    def __post_init__(self) -> None:
        if not self.grids:
            raise ValueError("a route must visit at least one grid")

    @property
    def finish_time(self) -> int:
        """Absolute time at which the final grid is reached."""
        return self.start_time + len(self.grids) - 1

    @property
    def duration(self) -> int:
        """Number of timesteps spent moving or waiting."""
        return len(self.grids) - 1

    @property
    def origin(self) -> Grid:
        return self.grids[0]

    @property
    def destination(self) -> Grid:
        return self.grids[-1]

    def position_at(self, t: int) -> Grid:
        """Return the grid occupied at absolute time ``t``.

        Before ``start_time`` the robot is parked at the origin; after
        ``finish_time`` it is parked at the destination.  This mirrors
        how the simulator treats routes during execution.
        """
        if t <= self.start_time:
            return self.grids[0]
        if t >= self.finish_time:
            return self.grids[-1]
        return self.grids[t - self.start_time]

    def steps(self) -> Iterator[Tuple[int, Grid]]:
        """Yield ``(time, grid)`` pairs for every visited timestep."""
        for i, g in enumerate(self.grids):
            yield self.start_time + i, g

    def is_unit_speed(self) -> bool:
        """Check that consecutive grids are identical or 4-adjacent."""
        for a, b in zip(self.grids, self.grids[1:]):
            if manhattan(a, b) > 1:
                return False
        return True


@dataclass(frozen=True)
class Task:
    """A delivery task: bring ``rack`` to ``picker`` and return it.

    Executing a task issues three queries (pickup, transmission,
    return), following Section VIII-A of the paper.
    """

    release_time: int
    rack: Grid
    picker: Grid
    task_id: int = -1


def concatenate_routes(first: Route, second: Route) -> Route:
    """Join two routes where ``second`` begins where ``first`` ends.

    Any gap between ``first.finish_time`` and ``second.start_time`` is
    filled with waiting steps at the junction grid.

    Raises:
        ValueError: if the routes do not meet at a common grid or the
            second route starts before the first one finishes.
    """
    if second.start_time < first.finish_time:
        raise ValueError("second route starts before the first finishes")
    if first.destination != second.origin:
        raise ValueError("routes do not share a junction grid")
    gap = second.start_time - first.finish_time
    grids = list(first.grids) + [first.destination] * gap + list(second.grids[1:])
    return Route(first.start_time, grids, query_id=first.query_id)
