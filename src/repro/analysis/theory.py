"""Section VII-A: effectiveness theory and its empirical counterpart.

Theorem 1 bounds the expected competitive ratio of one SRP route by

    E[CR] <= 1 + max(1, 3 p^2) / (3 (1 - p))

where ``p`` is the probability that a grid cell is occupied at a given
second.  At the theorem's stated congestion bound p = 0.577 this
evaluates to the paper's headline constant 1.788.

:func:`measure_competitive_ratios` complements the bound empirically:
it replays a query stream through SRP and compares each planned route
against an optimal collision-aware route computed by space-time A* on
an identical traffic state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.types import Query

#: the congestion level up to which the numerator of Theorem 1 stays 1
THEOREM1_P_STAR = 1 / math.sqrt(3)


def expected_competitive_ratio_bound(p: float) -> float:
    """Theorem 1's upper bound on E[CR] at cell-occupancy probability ``p``.

    Raises:
        ValueError: when ``p`` is outside [0, 1).
    """
    if not 0.0 <= p < 1.0:
        raise ValueError("occupancy probability must lie in [0, 1)")
    return 1.0 + max(1.0, 3.0 * p * p) / (3.0 * (1.0 - p))


@dataclass
class CompetitiveRatioReport:
    """Empirical per-route competitive ratios of an SRP stream."""

    ratios: List[float]

    @property
    def mean(self) -> float:
        return sum(self.ratios) / len(self.ratios)

    @property
    def worst(self) -> float:
        return max(self.ratios)

    def fraction_within(self, bound: float) -> float:
        """Share of routes whose ratio is at most ``bound``."""
        return sum(1 for r in self.ratios if r <= bound) / len(self.ratios)


def measure_competitive_ratios(
    warehouse, queries: Sequence[Query], seed_planner=None
) -> CompetitiveRatioReport:
    """Replay ``queries`` through SRP and rate each route against optimal.

    For every query the optimal comparator is a space-time A* planned
    against the *same* already-committed SRP traffic, so the ratio
    isolates SRP's restrictions (strip revisit omission, backtracking
    restriction, greedy transit — the paper's three sub-optimality
    sources) rather than traffic ordering effects.
    """
    from repro.core.fallback import SegmentStoreChecker
    from repro.core.planner import SRPPlanner
    from repro.pathfinding.distance import DistanceMaps
    from repro.pathfinding.space_time_astar import space_time_astar

    planner = seed_planner or SRPPlanner(warehouse)
    maps = DistanceMaps(warehouse)
    ratios: List[float] = []
    for query in queries:
        checker = SegmentStoreChecker(planner.graph, planner.stores, planner.crossings)
        optimal = space_time_astar(
            warehouse,
            query.origin,
            query.destination,
            query.release_time,
            checker,
            maps.get(query.destination),
        )
        route = planner.plan(query)
        if optimal is None or optimal.duration == 0:
            continue
        # Compare completion times from the query release so start
        # delays count against SRP.
        srp_cost = route.finish_time - query.release_time
        opt_cost = optimal.finish_time - query.release_time
        ratios.append(srp_cost / opt_cost)
    if not ratios:
        raise ValueError("no comparable queries in the stream")
    return CompetitiveRatioReport(ratios)
