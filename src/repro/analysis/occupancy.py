"""Empirical occupancy statistics over executed routes.

Theorem 1's competitive-ratio bound is parameterised by ``p``, the
probability that a grid cell is occupied at a given second.  This
module measures that quantity (and its spatial structure) from a set
of routes, closing the loop between the paper's theory and what a
simulated day actually produced:

* :func:`occupancy_probability` — the empirical ``p`` over the busy
  time window;
* :func:`visit_heatmap` — per-cell visit counts (congestion hot spots);
* :func:`busiest_cells` — the top-k cells by dwell time.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.types import Grid, Route
from repro.warehouse.matrix import Warehouse


def _time_window(routes: Sequence[Route]) -> Tuple[int, int]:
    if not routes:
        raise ValueError("no routes to analyse")
    return (
        min(r.start_time for r in routes),
        max(r.finish_time for r in routes),
    )


def occupancy_probability(routes: Sequence[Route], warehouse: Warehouse) -> float:
    """Empirical cell-occupancy probability ``p`` (Theorem 1's parameter).

    Occupied cell-seconds of all routes divided by free-cell-seconds of
    the window spanned by the traffic.  Idle robots are non-blocking by
    the simulation's convention and do not count.
    """
    t0, t1 = _time_window(routes)
    span = t1 - t0 + 1
    occupied = sum(len(r.grids) for r in routes)
    free_cells = warehouse.n_cells - warehouse.n_racks
    return occupied / (span * free_cells)


def visit_heatmap(routes: Sequence[Route], warehouse: Warehouse) -> np.ndarray:
    """Per-cell count of robot-seconds across all routes."""
    heat = np.zeros(warehouse.shape, dtype=np.int64)
    for route in routes:
        for _t, (i, j) in route.steps():
            heat[i, j] += 1
    return heat


def busiest_cells(
    routes: Sequence[Route], warehouse: Warehouse, top_k: int = 10
) -> List[Tuple[Grid, int]]:
    """The ``top_k`` cells by robot-seconds, busiest first."""
    heat = visit_heatmap(routes, warehouse)
    flat = heat.ravel()
    if top_k >= flat.size:
        order = np.argsort(flat)[::-1]
    else:
        top = np.argpartition(flat, -top_k)[-top_k:]
        order = top[np.argsort(flat[top])[::-1]]
    width = warehouse.width
    return [
        ((int(idx // width), int(idx % width)), int(flat[idx]))
        for idx in order[:top_k]
        if flat[idx] > 0
    ]


def render_heatmap(routes: Sequence[Route], warehouse: Warehouse) -> str:
    """ASCII heatmap: '.' cold, digits 1-9 scaled, '#' racks."""
    heat = visit_heatmap(routes, warehouse)
    peak = heat.max() or 1
    rows = []
    for i in range(warehouse.height):
        row = []
        for j in range(warehouse.width):
            if warehouse.racks[i, j]:
                row.append("#")
            elif heat[i, j] == 0:
                row.append(".")
            else:
                row.append(str(min(9, 1 + (9 * heat[i, j]) // (peak + 1))))
        rows.append("".join(row))
    return "\n".join(rows)
