"""Plain-text tables and series for the benchmark harness.

The benchmark files print the same rows/series the paper's tables and
figures report; these helpers keep that formatting consistent and make
the benchmark output readable in CI logs.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Render a simple aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[c]) for row in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    label: str, xs: Sequence[Any], ys: Sequence[Any], x_name: str = "x", y_name: str = "y"
) -> str:
    """Render one figure series as aligned (x, y) pairs."""
    lines = [f"{label}  ({x_name} -> {y_name})"]
    for x, y in zip(xs, ys):
        lines.append(f"  {_fmt(x):>8} -> {_fmt(y)}")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
