"""ASCII rendering of warehouses, routes and traffic snapshots.

Handy for debugging and for the examples: renders the rack matrix with
route overlays or a time-frozen snapshot of every robot's position.
Purely presentational — no planner logic lives here.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.types import Route
from repro.warehouse.matrix import Warehouse

_ROBOT_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyz"


def _base_canvas(warehouse: Warehouse) -> List[List[str]]:
    canvas = [
        ["#" if warehouse.racks[i, j] else "." for j in range(warehouse.width)]
        for i in range(warehouse.height)
    ]
    for i, j in warehouse.pickers:
        canvas[i][j] = "P"
    return canvas


def render_route(warehouse: Warehouse, route: Route) -> str:
    """Overlay one route on the warehouse: ``o`` origin, ``x`` goal, ``*`` path."""
    canvas = _base_canvas(warehouse)
    for _t, (i, j) in route.steps():
        canvas[i][j] = "*"
    oi, oj = route.origin
    di, dj = route.destination
    canvas[oi][oj] = "o"
    canvas[di][dj] = "x"
    return "\n".join("".join(row) for row in canvas)


def render_snapshot(warehouse: Warehouse, routes: Sequence[Route], t: int) -> str:
    """Render every active robot's position at time ``t``.

    Robots are drawn with cycling glyphs; only routes whose span covers
    ``t`` appear (idle robots are non-blocking and hidden, matching the
    simulation's conventions).
    """
    canvas = _base_canvas(warehouse)
    for idx, route in enumerate(routes):
        if route.start_time <= t <= route.finish_time:
            i, j = route.position_at(t)
            canvas[i][j] = _ROBOT_GLYPHS[idx % len(_ROBOT_GLYPHS)]
    return "\n".join("".join(row) for row in canvas)


def animate(
    warehouse: Warehouse, routes: Sequence[Route], t0: int, t1: int, step: int = 1
) -> Iterator[str]:
    """Yield one :func:`render_snapshot` frame per ``step`` seconds."""
    for t in range(t0, t1 + 1, step):
        yield f"t={t}\n" + render_snapshot(warehouse, routes, t)
