"""Recursive object sizing: the MC (memory consumption) metric.

The paper's MC records "the memory consumption of data structures
together with runtime space consumption during execution".  We measure
the deep size of a planner's traffic-scaling state
(:meth:`repro.planner_base.Planner.planning_state`) by walking the
object graph once, counting every reachable object exactly once.

numpy arrays contribute their buffer size; shared objects (interned
ints, repeated grids) are counted once, which matches how the runtime
actually spends memory.
"""

from __future__ import annotations

import sys
import types
from dataclasses import fields, is_dataclass
from typing import Any, Set

import numpy as np

_SKIPPED_TYPES = (
    type,
    types.ModuleType,
    types.FunctionType,
    types.BuiltinFunctionType,
    types.MethodType,
)


def deep_sizeof(obj: Any) -> int:
    """Return the deep size in bytes of ``obj`` and everything it references."""
    seen: Set[int] = set()
    stack = [obj]
    total = 0
    while stack:
        cur = stack.pop()
        oid = id(cur)  # srplint: allow(SRP007) same-process visited-set membership; ids never ordered or persisted
        if oid in seen:
            continue
        seen.add(oid)
        if isinstance(cur, _SKIPPED_TYPES):
            # Classes, functions and modules are shared program text,
            # not per-planner state; MC must not wander into them.
            continue
        if isinstance(cur, np.ndarray):
            total += sys.getsizeof(cur)
            if cur.base is not None:
                stack.append(cur.base)
            continue
        if isinstance(cur, memoryview):
            # A view is a handle; the bytes live in the exporting object
            # (e.g. the flat column of an array-backed store).
            total += sys.getsizeof(cur)
            stack.append(cur.obj)
            continue
        total += sys.getsizeof(cur)
        if isinstance(cur, dict):
            stack.extend(cur.keys())
            stack.extend(cur.values())
        elif isinstance(cur, (list, tuple, set, frozenset)):
            stack.extend(cur)
        elif is_dataclass(cur) and not isinstance(cur, type):
            for f in fields(cur):
                stack.append(getattr(cur, f.name))
        else:
            # An object can have BOTH a __dict__ and slot attributes
            # (a slotted subclass of an unslotted base), and its slots
            # can be spread across the MRO — walk all of them, or the
            # array columns of a columnar store would go uncounted.
            if hasattr(cur, "__dict__"):
                stack.append(cur.__dict__)
            for klass in type(cur).__mro__:
                slots = klass.__dict__.get("__slots__", ())
                if isinstance(slots, str):
                    slots = (slots,)
                for slot in slots:
                    if slot != "__dict__" and hasattr(cur, slot):
                        stack.append(getattr(cur, slot))
    return total
