"""Ground-truth collision validation of grid routes.

This is the test oracle for every planner in the package: it checks
Definition 3's two forbidden cases directly on grid routes, with no
strips, segments or reservations involved —

* two routes visiting the same grid at the same time (vertex conflict);
* two routes passing through each other between two consecutive
  timestamps (swap conflict).

Routes only occupy grids during their own ``[start_time, finish_time]``
span (robots "appear" at release and are parked off-route otherwise;
see DESIGN.md §4 on the idle-robot assumption).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import CollisionError
from repro.types import Grid, Route


@dataclass(frozen=True)
class Conflict:
    """One detected conflict between two routes."""

    kind: str  # "vertex" or "swap"
    time: int
    grid: Grid
    route_a: int  # indices into the validated route list
    route_b: int


def find_conflicts(
    routes: Sequence[Route], stop_at_first: bool = False
) -> List[Conflict]:
    """Find all vertex and swap conflicts among ``routes``.

    Uses a time-indexed occupancy map, so the cost is linear in the
    total number of route steps (plus hashing).
    """
    conflicts: List[Conflict] = []
    # (time, grid) -> first route index occupying it
    occupancy: Dict[Tuple[int, Grid], int] = {}
    # (time, from_grid, to_grid) -> route index performing that move
    moves: Dict[Tuple[int, Grid, Grid], int] = {}

    for idx, route in enumerate(routes):
        steps = list(route.steps())
        for t, grid in steps:
            key = (t, grid)
            other = occupancy.get(key)
            if other is not None and other != idx:
                conflicts.append(Conflict("vertex", t, grid, other, idx))
                if stop_at_first:
                    return conflicts
            else:
                occupancy[key] = idx
        for (t, a), (_t2, b) in zip(steps, steps[1:]):
            if a == b:
                continue
            reverse = moves.get((t, b, a))
            if reverse is not None and reverse != idx:
                conflicts.append(Conflict("swap", t, a, reverse, idx))
                if stop_at_first:
                    return conflicts
            moves[(t, a, b)] = idx
    return conflicts


def find_conflicts_pairwise(a: Route, b: Route) -> List[Conflict]:
    """Conflicts between exactly two routes (indices 0 and 1)."""
    return find_conflicts([a, b])


def find_illegal_cells(routes: Sequence[Route], warehouse) -> List[Conflict]:
    """Routes must only traverse rack-free cells (endpoints excepted).

    Definition 1 allows robots on "false" grids only; a route may start
    or end *under* a rack (pickup/return) but never pass through one.
    Violations are reported as pseudo-conflicts of kind ``"rack"`` with
    ``route_b == route_a``.
    """
    violations: List[Conflict] = []
    for idx, route in enumerate(routes):
        for t, grid in route.steps():
            if grid in (route.origin, route.destination):
                continue
            if warehouse.is_rack(grid):
                violations.append(Conflict("rack", t, grid, idx, idx))
    return violations


def assert_routes_legal(routes: Sequence[Route], warehouse) -> None:
    """Raise when any route drives through a rack or exceeds unit speed."""
    for idx, route in enumerate(routes):
        if not route.is_unit_speed():
            raise CollisionError(f"route #{idx} violates unit speed")
    violations = find_illegal_cells(routes, warehouse)
    if violations:
        v = violations[0]
        raise CollisionError(
            f"route #{v.route_a} drives through rack {v.grid} at t={v.time}"
        )


def assert_collision_free(routes: Sequence[Route]) -> None:
    """Raise :class:`CollisionError` when any pair of routes conflicts."""
    conflicts = find_conflicts(routes, stop_at_first=True)
    if conflicts:
        c = conflicts[0]
        raise CollisionError(
            f"{c.kind} conflict at t={c.time}, grid={c.grid} between "
            f"routes #{c.route_a} and #{c.route_b}"
        )


#: cap per violation family so a systematic bug doesn't flood the report
_AUDIT_REPORT_CAP = 20


def audit_planner_state(
    planner,
    routes: Sequence[Route],
    since: int = 0,
    cell_filter: Optional[Callable[[Grid], bool]] = None,
) -> List[str]:
    """Cross-check an SRP-shaped planner's stores against its routes.

    The segment stores and the crossing ledger are the planner's *model*
    of committed traffic; ``routes`` are the traffic itself (every route
    the caller received, with recovery revisions applied).  After an
    undisturbed day the two views agree by construction; after fault
    injection they only agree if every decommit/replan recovery removed
    exactly the abandoned suffix and re-committed exactly the revised
    route.  This audit makes that invariant checkable:

    * **occupancy equality** — the set of ``(t, grid)`` cells covered by
      stored segments equals the cells covered by the routes plus any
      exogenous blockages (:attr:`SRPPlanner.blockages`).  A stored cell
      no route explains is a *phantom reservation* (a leaked suffix); a
      route cell no segment covers is *missing coverage* (over-eager
      decommit — later queries could be planned through a robot).
    * **crossing equality** — the ledger's boundary-crossing keys equal
      the crossings recomputed from the routes, both directions.

    Comparison is restricted to ``t >= since`` (pass the last prune
    time: pruned history is gone from the stores by design).  Segment
    decompositions are *not* compared — decommit truncation legally
    re-segments a route — only the occupancy they induce.

    ``cell_filter`` restricts the comparison to cells it accepts — a
    region-sharded worker audits against full cross-region routes but
    only owns its own band, so expected occupancy is filtered to region
    cells and a crossing key is expected iff either endpoint lies in the
    region (boundary keys are committed to both adjacent shards).

    Returns human-readable violation strings, empty when consistent.
    """
    from repro.core.conversion import route_to_strip_artifacts

    graph = planner.graph
    violations: List[str] = []

    expected: set = set()
    for route in routes:
        for t, grid in route.steps():
            if t >= since and (cell_filter is None or cell_filter(grid)):
                expected.add((t, grid))
    blocked: set = set()
    for cell, t0, t1 in getattr(planner, "blockages", ()):
        for t in range(max(t0, since), t1 + 1):
            blocked.add((t, cell))

    stored: set = set()
    for strip_idx, store in planner.stores.active_items():
        strip = graph.strips[strip_idx]
        for seg in store.iter_segments():
            for t in range(max(seg.t0, since), seg.t1 + 1):
                stored.add((t, strip.grid_at(seg.position_at(t))))

    for t, grid in sorted(stored - expected - blocked)[:_AUDIT_REPORT_CAP]:
        violations.append(
            f"phantom reservation: stores claim {grid} at t={t} "
            "but no surviving route or blockage occupies it"
        )
    for t, grid in sorted(expected - stored)[:_AUDIT_REPORT_CAP]:
        violations.append(
            f"missing coverage: a route occupies {grid} at t={t} "
            "but no stored segment covers it"
        )

    expected_keys: set = set()
    for route in routes:
        _segments, keys = route_to_strip_artifacts(graph, route)
        expected_keys.update(
            k
            for k in keys
            if k[2] >= since
            and (cell_filter is None or cell_filter(k[0]) or cell_filter(k[1]))
        )
    stored_keys = {k for k in planner.crossings.iter_keys() if k[2] >= since}
    for key in sorted(stored_keys - expected_keys)[:_AUDIT_REPORT_CAP]:
        violations.append(
            f"phantom crossing: ledger holds {key[0]}->{key[1]} at t={key[2]} "
            "but no surviving route performs it"
        )
    for key in sorted(expected_keys - stored_keys)[:_AUDIT_REPORT_CAP]:
        violations.append(
            f"missing crossing: a route crosses {key[0]}->{key[1]} at "
            f"t={key[2]} but the ledger does not record it"
        )
    return violations


def assert_planner_state_consistent(
    planner, routes: Sequence[Route], since: int = 0
) -> None:
    """Raise :class:`CollisionError` on the first audit violation."""
    violations = audit_planner_state(planner, routes, since=since)
    if violations:
        raise CollisionError(
            f"planner state audit failed ({len(violations)} finding(s)); "
            f"first: {violations[0]}"
        )
