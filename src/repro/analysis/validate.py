"""Ground-truth collision validation of grid routes.

This is the test oracle for every planner in the package: it checks
Definition 3's two forbidden cases directly on grid routes, with no
strips, segments or reservations involved —

* two routes visiting the same grid at the same time (vertex conflict);
* two routes passing through each other between two consecutive
  timestamps (swap conflict).

Routes only occupy grids during their own ``[start_time, finish_time]``
span (robots "appear" at release and are parked off-route otherwise;
see DESIGN.md §4 on the idle-robot assumption).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import CollisionError
from repro.types import Grid, Route


@dataclass(frozen=True)
class Conflict:
    """One detected conflict between two routes."""

    kind: str  # "vertex" or "swap"
    time: int
    grid: Grid
    route_a: int  # indices into the validated route list
    route_b: int


def find_conflicts(
    routes: Sequence[Route], stop_at_first: bool = False
) -> List[Conflict]:
    """Find all vertex and swap conflicts among ``routes``.

    Uses a time-indexed occupancy map, so the cost is linear in the
    total number of route steps (plus hashing).
    """
    conflicts: List[Conflict] = []
    # (time, grid) -> first route index occupying it
    occupancy: Dict[Tuple[int, Grid], int] = {}
    # (time, from_grid, to_grid) -> route index performing that move
    moves: Dict[Tuple[int, Grid, Grid], int] = {}

    for idx, route in enumerate(routes):
        steps = list(route.steps())
        for t, grid in steps:
            key = (t, grid)
            other = occupancy.get(key)
            if other is not None and other != idx:
                conflicts.append(Conflict("vertex", t, grid, other, idx))
                if stop_at_first:
                    return conflicts
            else:
                occupancy[key] = idx
        for (t, a), (_t2, b) in zip(steps, steps[1:]):
            if a == b:
                continue
            reverse = moves.get((t, b, a))
            if reverse is not None and reverse != idx:
                conflicts.append(Conflict("swap", t, a, reverse, idx))
                if stop_at_first:
                    return conflicts
            moves[(t, a, b)] = idx
    return conflicts


def find_conflicts_pairwise(a: Route, b: Route) -> List[Conflict]:
    """Conflicts between exactly two routes (indices 0 and 1)."""
    return find_conflicts([a, b])


def find_illegal_cells(routes: Sequence[Route], warehouse) -> List[Conflict]:
    """Routes must only traverse rack-free cells (endpoints excepted).

    Definition 1 allows robots on "false" grids only; a route may start
    or end *under* a rack (pickup/return) but never pass through one.
    Violations are reported as pseudo-conflicts of kind ``"rack"`` with
    ``route_b == route_a``.
    """
    violations: List[Conflict] = []
    for idx, route in enumerate(routes):
        for t, grid in route.steps():
            if grid in (route.origin, route.destination):
                continue
            if warehouse.is_rack(grid):
                violations.append(Conflict("rack", t, grid, idx, idx))
    return violations


def assert_routes_legal(routes: Sequence[Route], warehouse) -> None:
    """Raise when any route drives through a rack or exceeds unit speed."""
    for idx, route in enumerate(routes):
        if not route.is_unit_speed():
            raise CollisionError(f"route #{idx} violates unit speed")
    violations = find_illegal_cells(routes, warehouse)
    if violations:
        v = violations[0]
        raise CollisionError(
            f"route #{v.route_a} drives through rack {v.grid} at t={v.time}"
        )


def assert_collision_free(routes: Sequence[Route]) -> None:
    """Raise :class:`CollisionError` when any pair of routes conflicts."""
    conflicts = find_conflicts(routes, stop_at_first=True)
    if conflicts:
        c = conflicts[0]
        raise CollisionError(
            f"{c.kind} conflict at t={c.time}, grid={c.grid} between "
            f"routes #{c.route_a} and #{c.route_b}"
        )
