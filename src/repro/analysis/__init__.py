"""Analysis utilities: validation oracle, memory metering, reporting.

* :mod:`repro.analysis.validate` — a brute-force grid-level conflict
  checker used as the ground-truth oracle in tests and simulations;
* :mod:`repro.analysis.sizeof` — recursive object sizing behind the
  paper's MC (memory consumption) metric;
* :mod:`repro.analysis.reporting` — plain-text tables/series matching
  the rows the paper reports.
"""

from repro.analysis.occupancy import (
    busiest_cells,
    occupancy_probability,
    render_heatmap,
    visit_heatmap,
)
from repro.analysis.render import animate, render_route, render_snapshot
from repro.analysis.reporting import format_series, format_table
from repro.analysis.sizeof import deep_sizeof
from repro.analysis.theory import (
    THEOREM1_P_STAR,
    CompetitiveRatioReport,
    expected_competitive_ratio_bound,
    measure_competitive_ratios,
)
from repro.analysis.validate import (
    Conflict,
    assert_collision_free,
    assert_planner_state_consistent,
    assert_routes_legal,
    audit_planner_state,
    find_conflicts,
    find_conflicts_pairwise,
    find_illegal_cells,
)

__all__ = [
    "Conflict",
    "audit_planner_state",
    "assert_planner_state_consistent",
    "find_conflicts",
    "find_conflicts_pairwise",
    "find_illegal_cells",
    "assert_collision_free",
    "assert_routes_legal",
    "deep_sizeof",
    "format_table",
    "format_series",
    "THEOREM1_P_STAR",
    "CompetitiveRatioReport",
    "expected_competitive_ratio_bound",
    "measure_competitive_ratios",
    "animate",
    "render_route",
    "render_snapshot",
    "busiest_cells",
    "occupancy_probability",
    "render_heatmap",
    "visit_heatmap",
]
