"""Legacy setup shim: enables `pip install -e .` on offline machines
without the `wheel` package (metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
