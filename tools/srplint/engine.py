"""Core srplint engine: findings, pragmas, rule protocol, file runner.

A :class:`Rule` inspects one parsed module and yields :class:`Finding`
records.  The engine owns everything rule-independent: discovering
files, parsing, extracting ``# srplint:`` suppression pragmas with
:mod:`tokenize` (so pragmas inside string literals are never honoured),
and filtering findings through those pragmas.

Pragma syntax (one comment, trailing the offending line)::

    x = 0.5  # srplint: allow-float  <reason why a float is sound here>
    foo()    # srplint: allow(SRP003) <reason>
    return ok  # srplint: holds(claim_boundary_hold) <reason>
    self.done = 1  # srplint: shared(done) <reason>

``allow-float`` is sugar for ``allow(SRP002)``.  ``holds(...)`` declares
that the annotated ``return`` intentionally exits with the named
resources still acquired (a 2PC *prepare* handing claims to its
coordinator — consumed by SRP008); ``shared(...)`` declares the named
attributes/variables safe to touch from a thread body without a lock
(immutable hand-off, monotonic flag — consumed by SRP009).  A pragma
**must** carry a non-empty reason; a bare pragma is itself reported as
``SRP000`` so that suppressions stay auditable
(``benchmarks/check_regression.py`` surfaces the full pragma inventory
in CI job summaries).  Project mode additionally tracks which pragmas
actually fired, so dead suppressions are reported by
``--report-unused-pragmas`` instead of quietly accumulating.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Code used for tool-level problems (unparsable file, malformed pragma).
TOOL_CODE = "SRP000"

_PRAGMA_RE = re.compile(
    r"#\s*srplint:\s*(?P<directive>allow-float|allow\((?P<code>[A-Z]{3}\d{3})\)"
    r"|holds\((?P<holds>[A-Za-z_][\w ,]*)\)"
    r"|shared\((?P<shared>[A-Za-z_][\w ,]*)\))"
    r"(?P<reason>.*)$"
)


def _split_names(raw: str) -> Tuple[str, ...]:
    return tuple(name.strip() for name in raw.split(",") if name.strip())


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violation (or tool error) at a location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """Classic ``path:line:col: CODE message`` single-line form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def render_github(self) -> str:
        """GitHub Actions workflow-command annotation form."""
        return (
            f"::error file={self.path},line={self.line},col={self.col},"
            f"title={self.code}::{self.message}"
        )


@dataclass
class Pragmas:
    """Per-file suppression table extracted from ``# srplint:`` comments."""

    #: line -> set of rule codes allowed on that line
    allowed: Dict[int, set] = field(default_factory=dict)
    #: tool-level findings for malformed pragmas
    errors: List[Tuple[int, int, str]] = field(default_factory=list)
    #: (line, directive, reason) for every well-formed pragma (audit feed)
    entries: List[Tuple[int, str, str]] = field(default_factory=list)
    #: line -> resource names an exit on that line may legitimately hold
    #: (SRP008's 2PC-prepare escape hatch)
    holds: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    #: file-scoped attribute/variable names declared safe to share across
    #: threads without a lock (SRP009), name -> declaration line
    shared: Dict[str, int] = field(default_factory=dict)
    #: (line, directive) pairs that suppressed or informed ≥1 finding —
    #: everything else is a dead pragma (``--report-unused-pragmas``)
    used: set = field(default_factory=set)

    def allows(self, line: int, code: str) -> bool:
        if code in self.allowed.get(line, ()):
            self.mark_used(line, f"allow({code})")
            if code == "SRP002":
                self.mark_used(line, "allow-float")
            return True
        return False

    def mark_used(self, line: int, directive: str) -> None:
        self.used.add((line, directive))

    def mark_holds_used(self, line: int) -> None:
        """Mark the ``holds(...)`` entry on *line* as consulted (SRP008)."""
        for entry_line, directive, _reason in self.entries:
            if entry_line == line and directive.startswith("holds("):
                self.used.add((entry_line, directive))

    def mark_shared_used(self, name: str) -> None:
        """Mark the ``shared(...)`` entry declaring *name* as consulted."""
        line = self.shared.get(name)
        if line is None:
            return
        for entry_line, directive, _reason in self.entries:
            if entry_line == line and directive.startswith("shared("):
                self.used.add((entry_line, directive))

    def unused_entries(self, active_codes: set) -> List[Tuple[int, str, str]]:
        """Pragma entries that never fired, restricted to *active_codes*.

        A pragma for a rule that was not part of this run is never
        reported: only codes the run could have exercised count.
        ``holds``/``shared`` map to the rules that consume them.
        """
        out: List[Tuple[int, str, str]] = []
        for line, directive, reason in self.entries:
            if directive.startswith("allow-float"):
                code = "SRP002"
            elif directive.startswith("allow("):
                code = directive[6:12]
            elif directive.startswith("holds("):
                code = "SRP008"
            else:  # shared(...)
                code = "SRP009"
            if code not in active_codes:
                continue
            if (line, directive) not in self.used:
                out.append((line, directive, reason))
        return out


def extract_pragmas(source: str) -> Pragmas:
    """Scan *source* comments for ``# srplint:`` pragmas.

    Uses :mod:`tokenize` so string literals that merely contain the
    pragma text are ignored.  Falls back to a line scan when the file
    does not tokenize (the parse error is reported separately).
    """
    pragmas = Pragmas()
    comments: List[Tuple[int, int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.start[1], tok.string))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "#" in text:
                idx = text.index("#")
                comments.append((lineno, idx, text[idx:]))
    for lineno, col, text in comments:
        match = _PRAGMA_RE.search(text)
        if match is None:
            # Only comments that look like a pragma (tool name followed
            # by a colon) are errors; prose mentions are fine.
            if "srplint" + ":" in text:
                pragmas.errors.append(
                    (lineno, col, "unrecognised srplint pragma (expected "
                     "'# srplint: allow-float <reason>' or "
                     "'# srplint: allow(CODE) <reason>')")
                )
            continue
        directive = match.group("directive")
        reason = match.group("reason").strip(" :-—")
        if not reason:
            pragmas.errors.append(
                (lineno, col,
                 f"srplint pragma '{directive}' is missing a reason")
            )
            continue
        if match.group("holds") is not None:
            names = _split_names(match.group("holds"))
            pragmas.holds[lineno] = pragmas.holds.get(lineno, ()) + names
        elif match.group("shared") is not None:
            for name in _split_names(match.group("shared")):
                pragmas.shared[name] = lineno
        else:
            code = match.group("code") or "SRP002"
            pragmas.allowed.setdefault(lineno, set()).add(code)
        pragmas.entries.append((lineno, directive, reason))
    return pragmas


class Rule:
    """Base class for srplint rules.

    Subclasses set :attr:`code`, :attr:`name`, :attr:`scope` and
    implement :meth:`check`.  ``scope`` is a tuple of POSIX path
    substrings; an empty tuple applies the rule to every file.
    """

    code: str = TOOL_CODE
    name: str = "base"
    scope: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if not self.scope:
            return True
        posix = path.replace("\\", "/")
        return any(part in posix for part in self.scope)

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        raise NotImplementedError

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


class ProjectRule(Rule):
    """Base class for whole-program rules (SRP007–SRP010).

    A project rule sees the complete
    :class:`srplint.project.ProjectIndex` — every parsed module, the
    function index, the call graph — instead of one tree at a time, so
    it can reason across files and processes.  ``scope`` still applies:
    it selects which modules' *definitions* the rule analyses (findings
    may land anywhere the analysis reaches).  In per-file mode project
    rules are silent; ``--project`` runs them exactly once per run.
    """

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        return []

    def check_project(self, project: "object") -> List[Finding]:
        raise NotImplementedError


def default_rules() -> List[Rule]:
    """Instantiate the built-in rule set (imported lazily to avoid cycles)."""
    from srplint.rules import ALL_RULES

    return [rule_cls() for rule_cls in ALL_RULES]


def run_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    respect_scope: bool = True,
) -> List[Finding]:
    """Lint one module's *source*; returns findings sorted by location.

    ``respect_scope=False`` runs every given rule regardless of its
    path scope — used by the fixture tests, which live outside the
    paths the rules target in the real tree.
    """
    if rules is None:
        rules = default_rules()
    pragmas = extract_pragmas(source)
    findings: List[Finding] = [
        Finding(path, line, col, TOOL_CODE, message)
        for line, col, message in pragmas.errors
    ]
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        findings.append(
            Finding(path, exc.lineno or 1, (exc.offset or 1) - 1, TOOL_CODE,
                    f"could not parse file: {exc.msg}")
        )
        return sorted(findings, key=lambda f: (f.line, f.col, f.code))
    for rule in rules:
        if respect_scope and not rule.applies_to(path):
            continue
        for finding in rule.check(tree, path):
            if pragmas.allows(finding.line, finding.code):
                continue
            findings.append(finding)
    return sorted(findings, key=lambda f: (f.line, f.col, f.code))


def run_path(
    path: Path,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one file on disk."""
    source = path.read_text(encoding="utf-8")
    return run_source(source, str(path), rules=rules)


def iter_python_files(
    paths: Iterable[str], exclude: Sequence[str] = ()
) -> Iterator[Path]:
    """Yield every ``.py`` file under *paths* (files or directories).

    ``exclude`` is a sequence of POSIX path substrings; any file whose
    path contains one is skipped (the CLI default excludes the seeded
    rule-violation fixtures under ``tests/fixtures/``).
    """

    def keep(p: Path) -> bool:
        posix = p.as_posix()
        return not any(part in posix for part in exclude)

    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from (f for f in sorted(p.rglob("*.py")) if keep(f))
        elif p.suffix == ".py" and keep(p):
            yield p
