"""Per-function control-flow graphs with exception edges.

SRP008's acquire/release pairing proof needs to know, for every
``claim_boundary_hold`` / ``commit_recovery_hold`` call, which function
exits are reachable afterwards — **including the exits the happy path
never sees**: an exception thrown between the claim and the release, a
``return`` hidden in an error branch, a ``break`` that skips the
release loop.  This module builds that graph from the AST alone.

Shape: one node per *simple* statement; compound statements contribute
their header (the ``if``/``while`` test, the ``for`` iterable, the
``with`` items) as a node and their bodies as subgraphs.  Edges carry a
kind:

``normal``
    ordinary fall-through / branch flow;
``exc``
    potential exception flow, from any statement that can raise to the
    innermost matching handlers (and onward to the function's
    exceptional exit when no broad handler encloses it);
``back``
    a loop back edge (body exit or ``continue`` to the loop header);
``skip``
    the zero-iteration edge of a loop (header straight to the code
    after the loop).

Loop bodies additionally get a ``normal`` edge from their exit to the
code after the loop, so an analysis that drops ``back`` and ``skip``
edges sees every loop as *executing exactly once* — the standard
abstraction for lightweight pairing checkers: it keeps the graph
acyclic without hiding the body's acquire/release events, at the price
of ignoring zero-iteration and re-iteration interleavings.

``try``/``finally`` is modelled by building the ``finally`` body once
per continuation kind — the normal fall-through, the exceptional one,
and (when the protected region returns) the return path — so a release
inside ``finally`` correctly covers all three.  Exception edges are
conservative about *what* raises: any statement containing a call,
attribute access, subscript, binary operation, ``raise`` or ``assert``
is assumed able to raise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

ENTRY = "entry"
EXIT = "exit"
EXC_EXIT = "exc_exit"
STMT = "stmt"
JOIN = "join"

#: handler annotations broad enough to stop upward exception propagation
_BROAD_HANDLERS = frozenset({"Exception", "BaseException"})


@dataclass
class CFGNode:
    idx: int
    kind: str                     # entry / exit / exc_exit / stmt / join
    stmt: Optional[ast.AST] = None

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)

    @property
    def is_return(self) -> bool:
        return isinstance(self.stmt, ast.Return)


@dataclass
class CFG:
    nodes: List[CFGNode] = field(default_factory=list)
    #: idx -> [(successor idx, edge kind), ...]
    succs: Dict[int, List[Tuple[int, str]]] = field(default_factory=dict)
    entry: int = 0
    exit: int = 0
    exc_exit: int = 0

    def successors(
        self, idx: int, *, ignore: Sequence[str] = ()
    ) -> List[Tuple[int, str]]:
        return [
            (dst, kind)
            for dst, kind in self.succs.get(idx, [])
            if kind not in ignore
        ]

    def node(self, idx: int) -> CFGNode:
        return self.nodes[idx]

    def edges(self) -> List[Tuple[int, int, str]]:
        return [
            (src, dst, kind)
            for src, succ in self.succs.items()
            for dst, kind in succ
        ]


def _can_raise(parts: Sequence[Optional[ast.AST]]) -> bool:
    for part in parts:
        if part is None:
            continue
        for node in ast.walk(part):
            if isinstance(
                node,
                (ast.Call, ast.Attribute, ast.Subscript, ast.BinOp,
                 ast.Raise, ast.Assert, ast.Await, ast.Yield, ast.YieldFrom),
            ):
                return True
    return False


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.cfg.entry = self._add(ENTRY)
        self.cfg.exit = self._add(EXIT)
        self.cfg.exc_exit = self._add(EXC_EXIT)
        self._loop_headers: List[int] = []

    # -- plumbing ------------------------------------------------------
    def _add(self, kind: str, stmt: Optional[ast.AST] = None) -> int:
        node = CFGNode(len(self.cfg.nodes), kind, stmt)
        self.cfg.nodes.append(node)
        self.cfg.succs[node.idx] = []
        return node.idx

    def _edge(self, src: int, dst: int, kind: str = "normal") -> None:
        edges = self.cfg.succs[src]
        if (dst, kind) not in edges:
            edges.append((dst, kind))

    def _wire(
        self, preds: Sequence[int], dst: int, kind: str = "normal"
    ) -> None:
        for pred in preds:
            self._edge(pred, dst, kind)

    def _exc(
        self,
        idx: int,
        exc_targets: Sequence[int],
        parts: Sequence[Optional[ast.AST]],
    ) -> None:
        if _can_raise(parts):
            for target in exc_targets:
                self._edge(idx, target, "exc")

    # -- construction --------------------------------------------------
    def build(self, fn: ast.AST) -> CFG:
        body = list(getattr(fn, "body", []))
        exits = self._stmts(body, [self.cfg.entry], [self.cfg.exc_exit],
                            None, None)
        self._wire(exits, self.cfg.exit)
        self._retag_skip_edges()
        return self.cfg

    def _retag_skip_edges(self) -> None:
        """Re-tag each loop header's fall-through edge as ``skip``.

        A header's first normal successor is its body entry (added
        first); any later normal edge is the zero-iteration
        continuation past the loop.
        """
        for src in self._loop_headers:
            edges = self.cfg.succs[src]
            seen_body = False
            for i, (dst, kind) in enumerate(edges):
                if kind != "normal":
                    continue
                if not seen_body:
                    seen_body = True
                    continue
                edges[i] = (dst, "skip")

    def _stmts(
        self,
        stmts: Sequence[ast.stmt],
        preds: List[int],
        exc_targets: List[int],
        breaks: Optional[List[int]],
        continue_to: Optional[int],
    ) -> List[int]:
        current = list(preds)
        for stmt in stmts:
            if not current:
                break  # unreachable after return/raise/break/continue
            current = self._stmt(stmt, current, exc_targets, breaks,
                                 continue_to)
        return current

    def _stmt(
        self,
        stmt: ast.stmt,
        preds: List[int],
        exc_targets: List[int],
        breaks: Optional[List[int]],
        continue_to: Optional[int],
    ) -> List[int]:
        if isinstance(stmt, ast.If):
            node = self._add(STMT, stmt)
            self._wire(preds, node)
            self._exc(node, exc_targets, [stmt.test])
            body_exits = self._stmts(stmt.body, [node], exc_targets,
                                     breaks, continue_to)
            else_exits = (
                self._stmts(stmt.orelse, [node], exc_targets, breaks,
                            continue_to)
                if stmt.orelse else [node]
            )
            return body_exits + else_exits

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, preds, exc_targets, breaks, continue_to)

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self._add(STMT, stmt)
            self._wire(preds, node)
            self._exc(node, exc_targets,
                      [item.context_expr for item in stmt.items])
            return self._stmts(stmt.body, [node], exc_targets, breaks,
                               continue_to)

        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds, exc_targets, breaks, continue_to)

        if isinstance(stmt, ast.Match):
            node = self._add(STMT, stmt)
            self._wire(preds, node)
            self._exc(node, exc_targets, [stmt.subject])
            exits: List[int] = []
            exhaustive = False
            for case in stmt.cases:
                exits.extend(self._stmts(case.body, [node], exc_targets,
                                         breaks, continue_to))
                if (
                    isinstance(case.pattern, ast.MatchAs)
                    and case.pattern.pattern is None
                ):
                    exhaustive = True
            if not exhaustive:
                exits.append(node)
            return exits

        # Simple statements: one node each.
        node = self._add(STMT, stmt)
        self._wire(preds, node)
        if isinstance(stmt, ast.Return):
            self._exc(node, exc_targets, [stmt.value])
            self._edge(node, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Raise):
            for target in exc_targets:
                self._edge(node, target, "exc")
            return []
        if isinstance(stmt, ast.Break):
            if breaks is not None:
                breaks.append(node)
            return []
        if isinstance(stmt, ast.Continue):
            if continue_to is not None:
                self._edge(node, continue_to, "back")
            return []
        self._exc(node, exc_targets, [stmt])
        return [node]

    def _loop(
        self,
        stmt: ast.stmt,
        preds: List[int],
        exc_targets: List[int],
        breaks: Optional[List[int]],
        continue_to: Optional[int],
    ) -> List[int]:
        node = self._add(STMT, stmt)
        self._wire(preds, node)
        self._loop_headers.append(node)
        if isinstance(stmt, ast.While):
            header: Optional[ast.AST] = stmt.test
            infinite = (
                isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
            )
        else:
            header = stmt.iter  # type: ignore[union-attr]
            infinite = False
        self._exc(node, exc_targets, [header])
        loop_breaks: List[int] = []
        body_exits = self._stmts(
            stmt.body,  # type: ignore[attr-defined]
            [node], exc_targets, loop_breaks, node,
        )
        for exit_idx in body_exits:
            self._edge(exit_idx, node, "back")
        # Loop-once abstraction: the body exit continues past the loop
        # on a normal edge; the header's own fall-through is re-tagged
        # to "skip" at the end of the build.
        after_preds: List[int] = list(loop_breaks) + list(body_exits)
        if not infinite:
            after_preds.append(node)
        orelse = getattr(stmt, "orelse", [])
        if orelse:
            after_preds = self._stmts(orelse, after_preds, exc_targets,
                                      breaks, continue_to)
        return after_preds

    def _try(
        self,
        stmt: ast.Try,
        preds: List[int],
        exc_targets: List[int],
        breaks: Optional[List[int]],
        continue_to: Optional[int],
    ) -> List[int]:
        has_broad = any(_is_broad(h) for h in stmt.handlers)

        # Exceptional continuation once this statement gives up: through
        # an exceptional copy of ``finally`` when present, else straight
        # to the enclosing targets.
        if stmt.finalbody:
            exc_join = self._add(JOIN, stmt)
            exc_final_exits = self._stmts(stmt.finalbody, [exc_join],
                                          exc_targets, breaks, continue_to)
            for target in exc_targets:
                self._wire(exc_final_exits, target, "exc")
            outward: List[int] = [exc_join]
        else:
            outward = list(exc_targets)

        first_inner = len(self.cfg.nodes)
        handler_entries: List[int] = []
        handler_exits: List[int] = []
        for handler in stmt.handlers:
            entry = self._add(STMT, handler)
            handler_entries.append(entry)
            handler_exits.extend(self._stmts(handler.body, [entry], outward,
                                             breaks, continue_to))
        inner_targets = list(handler_entries)
        if not has_broad or not stmt.handlers:
            inner_targets.extend(outward)

        body_exits = self._stmts(stmt.body, list(preds), inner_targets,
                                 breaks, continue_to)
        if stmt.orelse:
            body_exits = self._stmts(stmt.orelse, body_exits, inner_targets,
                                     breaks, continue_to)
        normal_exits = body_exits + handler_exits
        if stmt.finalbody:
            self._reroute_returns(first_inner, stmt, exc_targets, breaks,
                                  continue_to)
            join = self._add(JOIN, stmt)
            self._wire(normal_exits, join)
            return self._stmts(stmt.finalbody, [join], exc_targets, breaks,
                               continue_to)
        return normal_exits

    def _reroute_returns(
        self,
        first_inner: int,
        stmt: ast.Try,
        exc_targets: List[int],
        breaks: Optional[List[int]],
        continue_to: Optional[int],
    ) -> None:
        """Route ``return``s inside a ``try``/``finally`` through ``finally``.

        During construction the only normal edges into the exit node
        come from ``return`` statements (or from a nested re-route),
        so any such edge from a node built for this statement's body or
        handlers is a return path that must execute ``finally`` first.
        """
        returners = [
            idx
            for idx in range(first_inner, len(self.cfg.nodes))
            if any(
                dst == self.cfg.exit and kind == "normal"
                for dst, kind in self.cfg.succs[idx]
            )
        ]
        if not returners:
            return
        for idx in returners:
            self.cfg.succs[idx] = [
                (dst, kind)
                for dst, kind in self.cfg.succs[idx]
                if not (dst == self.cfg.exit and kind == "normal")
            ]
        ret_join = self._add(JOIN, stmt)
        self._wire(returners, ret_join)
        ret_exits = self._stmts(stmt.finalbody, [ret_join], exc_targets,
                                breaks, continue_to)
        self._wire(ret_exits, self.cfg.exit)


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for t in types:
        name = t.id if isinstance(t, ast.Name) else getattr(t, "attr", None)
        if name in _BROAD_HANDLERS:
            return True
    return False


def build_cfg(fn: ast.AST) -> CFG:
    """Build the CFG of one ``FunctionDef`` / ``AsyncFunctionDef``."""
    return _Builder().build(fn)
