"""Fixture-driven tests for the whole-program rules (SRP007–SRP010).

Mirrors ``test_rules.py``: every seeded-violation fixture tree must
produce the exact (code, line) pairs pinned here, and the companion
good trees must come back clean.  The final gate lints the real tree in
project mode — the same invocation CI runs.
"""

from pathlib import Path

from srplint.project import run_project

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[3]


def lint_tree(name, code):
    findings, _project = run_project([str(FIXTURES / name)])
    return [f for f in findings if f.code == code]


def codes_and_lines(findings):
    return [(f.code, f.line, Path(f.path).name) for f in findings]


class TestSRP007TransitiveDeterminism:
    def test_seeded_violations_exact(self):
        findings = lint_tree("srp007_bad", "SRP007")
        assert codes_and_lines(findings) == [
            ("SRP007", 9, "planner.py"),   # id() in scoped code
            ("SRP007", 12, "util.py"),     # time.time two hops away
            ("SRP007", 16, "util.py"),     # os.getenv in a helper
        ]

    def test_chain_named_in_message(self):
        findings = lint_tree("srp007_bad", "SRP007")
        deep = next(f for f in findings if f.line == 12)
        assert "plan_route" in deep.message
        assert "deep_stamp" in deep.message

    def test_unreachable_hazard_not_flagged(self):
        findings = lint_tree("srp007_bad", "SRP007")
        assert all(f.line != 20 for f in findings)  # unreachable_clock

    def test_clean_helpers_and_pragma_probe_accepted(self):
        assert lint_tree("srp007_good", "SRP007") == []

    def test_direct_hazards_left_to_srp003(self):
        # time.time directly in scoped code is SRP003's finding; SRP007
        # must not double-report it.
        findings, _ = run_project([str(FIXTURES / "srp007_bad")])
        srp003_lines = {f.line for f in findings if f.code == "SRP003"}
        srp007_lines = {f.line for f in findings if f.code == "SRP007"}
        assert not srp003_lines & srp007_lines


class TestSRP008AcquireReleasePairing:
    def test_seeded_violations_exact(self):
        findings = lint_tree("srp008_bad", "SRP008")
        assert codes_and_lines(findings) == [
            ("SRP008", 10, "twopc.py"),  # hold leaks past encode() exception
            ("SRP008", 19, "twopc.py"),  # crossing held at an error return
            ("SRP008", 29, "twopc.py"),  # recovery hold leaks past replan
        ]

    def test_seeded_exception_edge_mutation_fires(self):
        """The canonical mutation: hold taken, release removed from one
        exception edge — the happy path still binds, so only the
        path-sensitive check can see it."""
        findings = lint_tree("srp008_bad", "SRP008")
        leak = next(f for f in findings if f.line == 10)
        assert "exception" in leak.message
        assert "claim_boundary_hold" in leak.message

    def test_balanced_shapes_and_holds_pragma_accepted(self):
        assert lint_tree("srp008_good", "SRP008") == []

    def test_holds_pragma_marked_used(self):
        _findings, project = run_project([str(FIXTURES / "srp008_good")])
        module = next(iter(project.modules.values()))
        assert any(
            directive.startswith("holds(")
            for _line, directive in module.pragmas.used
        )


class TestSRP009ThreadSharedState:
    def test_seeded_violations_exact(self):
        findings = lint_tree("srp009_bad", "SRP009")
        assert codes_and_lines(findings) == [
            ("SRP009", 18, "srv.py"),  # self.active written without the lock
            ("SRP009", 35, "srv.py"),  # results.append outside the lock
        ]

    def test_messages_name_the_shared_field(self):
        findings = lint_tree("srp009_bad", "SRP009")
        assert "'active'" in findings[0].message
        assert "'results'" in findings[1].message

    def test_locked_writes_and_shared_pragma_accepted(self):
        assert lint_tree("srp009_good", "SRP009") == []

    def test_shared_pragma_marked_used(self):
        _findings, project = run_project([str(FIXTURES / "srp009_good")])
        module = next(iter(project.modules.values()))
        assert any(
            directive.startswith("shared(")
            for _line, directive in module.pragmas.used
        )


class TestSRP010ProtocolExhaustiveness:
    def test_seeded_violations_exact(self):
        findings = lint_tree("srp010_bad", "SRP010")
        assert codes_and_lines(findings) == [
            ("SRP010", 9, "proto.py"),   # {"op": "mystery"} unhandled
            ("SRP010", 17, "proto.py"),  # _op_ghost never constructed
        ]

    def test_ops_gate_comparisons_and_methods_all_count(self):
        assert lint_tree("srp010_good", "SRP010") == []


class TestProjectModeGate:
    def test_real_tree_clean_in_project_mode(self):
        """The committed tree passes whole-program mode — CI's gate."""
        findings, _ = run_project(
            [str(REPO_ROOT / "src")], exclude=("tests/fixtures",)
        )
        assert findings == [], "\n" + "\n".join(f.render() for f in findings)

    def test_unused_pragma_reported(self, tmp_path):
        from srplint.cli import main

        mod = tmp_path / "repro" / "core" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "x = 2  # srplint: allow(SRP003) nothing here is nondeterministic\n",
            encoding="utf-8",
        )
        assert main(
            [str(tmp_path), "--project", "--report-unused-pragmas", "--quiet"]
        ) == 1
        mod.write_text("x = 2\n", encoding="utf-8")
        assert main(
            [str(tmp_path), "--project", "--report-unused-pragmas", "--quiet"]
        ) == 0
