"""Tests for the whole-program index and call graph (srplint.project)."""

from pathlib import Path

from srplint.project import ProjectIndex, run_project

FIXTURES = Path(__file__).parent / "fixtures"


def build_callgraph_index():
    return ProjectIndex.build([str(FIXTURES / "callgraph")])


def callee_names(project, qualname):
    return {callee for callee, _call in project.calls.get(qualname, [])}


class TestModuleIndex:
    def test_dotted_names_from_package_roots(self):
        project = build_callgraph_index()
        assert "pkg" in project.by_name
        assert "pkg.impl" in project.by_name
        assert "pkg.sub.api" in project.by_name
        assert "pkg.user" in project.by_name

    def test_function_index_includes_nested_and_module_bodies(self):
        project = build_callgraph_index()
        assert "pkg.impl.worker" in project.functions
        assert "pkg.impl.outer.inner" in project.functions
        assert "pkg.impl.Store.bump" in project.functions
        assert "pkg.impl.<module>" in project.functions

    def test_class_index_records_typed_fields(self):
        project = build_callgraph_index()
        wrapper = project.classes["pkg.impl.Wrapper"]
        assert wrapper.attr_types["store"] == "pkg.impl.Store"


class TestCallGraph:
    def test_mutual_recursion_terminates_and_closes(self):
        project = build_callgraph_index()
        reach = project.reachable_from(["pkg.impl.helper"])
        assert "pkg.impl.worker" in reach
        assert "pkg.impl.helper" in reach

    def test_reexport_chain_resolves_to_definition(self):
        project = build_callgraph_index()
        # drive() calls exported_worker, re-exported pkg -> pkg.sub.api
        # -> pkg.impl.worker, and helper through the "import as" alias.
        callees = callee_names(project, "pkg.user.drive")
        assert "pkg.impl.worker" in callees
        assert "pkg.impl.helper" in callees

    def test_nested_function_resolution(self):
        project = build_callgraph_index()
        assert "pkg.impl.outer.inner" in callee_names(project, "pkg.impl.outer")
        assert "pkg.impl.worker" in callee_names(
            project, "pkg.impl.outer.inner"
        )

    def test_method_resolution_self_field_local_and_unique(self):
        project = build_callgraph_index()
        callees = callee_names(project, "pkg.impl.Wrapper.run")
        # self.store.bump() through the typed field
        assert "pkg.impl.Store.bump" in callees
        # local = Store(); local.touch()
        assert "pkg.impl.Store.touch" in callees
        # mystery.very_unique_probe(): only one project class defines it
        assert "pkg.impl.Store.very_unique_probe" in callees

    def test_self_method_chain(self):
        project = build_callgraph_index()
        assert "pkg.impl.Store.touch" in callee_names(
            project, "pkg.impl.Store.bump"
        )

    def test_generic_names_never_resolved_by_uniqueness(self):
        project = build_callgraph_index()
        # Wrapper.run has no .get/.append style calls resolved into the
        # project by the uniqueness heuristic (deny list).
        for callee in callee_names(project, "pkg.impl.Wrapper.run"):
            assert not callee.endswith(".get")

    def test_chain_reconstruction_and_truncation(self):
        project = build_callgraph_index()
        parents = project.reachable_from(["pkg.user.drive"])
        chain = project.chain_to(parents, "pkg.impl.worker")
        assert chain[0] == "pkg.user.drive"
        assert chain[-1] == "pkg.impl.worker"
        long_parents = {"f0": None}
        for i in range(1, 10):
            long_parents[f"f{i}"] = f"f{i - 1}"
        chain = project.chain_to(long_parents, "f9", limit=4)
        assert chain == ["f0", "...", "f7", "f8", "f9"]


class TestRunProject:
    def test_project_rules_silent_in_per_file_mode(self):
        from srplint.engine import run_path

        bad = (
            FIXTURES / "srp008_bad" / "repro" / "service" / "twopc.py"
        )
        assert all(f.code != "SRP008" for f in run_path(bad))

    def test_findings_sorted_and_pragma_filtered(self):
        findings, project = run_project(
            [str(FIXTURES / "srp007_good")]
        )
        assert findings == []
        # The good tree's allow(SRP007) pragma was consulted (id() probe).
        used = [
            entry
            for module in project.modules.values()
            for entry in module.pragmas.used
        ]
        assert used, "expected the allow(SRP007) pragma to be marked used"
