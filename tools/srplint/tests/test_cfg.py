"""Tests for the per-function CFG, focused on exception edges."""

import ast

from srplint.cfg import build_cfg


def cfg_of(source):
    tree = ast.parse(source)
    fn = next(
        n for n in tree.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return build_cfg(fn)


def node_at(cfg, line):
    for node in cfg.nodes:
        if node.kind == "stmt" and node.line == line:
            return node
    raise AssertionError(f"no stmt node at line {line}")


def edge_kinds(cfg, src_idx):
    return {(dst, kind) for dst, kind in cfg.succs[src_idx]}


class TestExceptionEdges:
    SRC_NARROW = (
        "def f(x):\n"
        "    try:\n"
        "        y = g(x)\n"           # line 3: can raise
        "    except ValueError:\n"     # line 4: handler
        "        y = 0\n"
        "    return y\n"
    )

    def test_raising_stmt_reaches_handler_and_exc_exit(self):
        cfg = cfg_of(self.SRC_NARROW)
        body = node_at(cfg, 3)
        exc_targets = {
            dst for dst, kind in cfg.succs[body.idx] if kind == "exc"
        }
        handler = node_at(cfg, 4)
        # A narrow handler may not match, so the exception also
        # propagates to the function's exceptional exit.
        assert handler.idx in exc_targets
        assert cfg.exc_exit in exc_targets

    def test_broad_handler_stops_propagation(self):
        src = self.SRC_NARROW.replace("except ValueError", "except Exception")
        cfg = cfg_of(src)
        body = node_at(cfg, 3)
        exc_targets = {
            dst for dst, kind in cfg.succs[body.idx] if kind == "exc"
        }
        assert cfg.exc_exit not in exc_targets

    def test_pure_statements_have_no_exc_edges(self):
        cfg = cfg_of("def f():\n    x = 1\n    return x\n")
        assign = node_at(cfg, 2)
        assert all(kind != "exc" for _dst, kind in cfg.succs[assign.idx])

    def test_raise_always_exits_exceptionally(self):
        cfg = cfg_of("def f():\n    raise ValueError('boom')\n")
        rs = node_at(cfg, 2)
        assert (cfg.exc_exit, "exc") in edge_kinds(cfg, rs.idx)


class TestReturnsAndFinally:
    def test_return_wires_to_exit(self):
        cfg = cfg_of("def f():\n    return 1\n")
        ret = node_at(cfg, 2)
        assert (cfg.exit, "normal") in edge_kinds(cfg, ret.idx)

    def test_return_in_try_finally_routes_through_finally(self):
        src = (
            "def f(res):\n"
            "    try:\n"
            "        return res.value\n"   # line 3
            "    finally:\n"
            "        res.close()\n"        # line 5 (built once per path)
        )
        cfg = cfg_of(src)
        ret = node_at(cfg, 3)
        # No direct normal edge return -> exit: it must pass a copy of
        # the finally body first.
        assert (cfg.exit, "normal") not in edge_kinds(cfg, ret.idx)
        succ = [dst for dst, kind in cfg.succs[ret.idx] if kind == "normal"]
        assert len(succ) == 1
        frontier = {succ[0]}
        seen_close = False
        for _ in range(10):
            nxt = set()
            for idx in frontier:
                node = cfg.nodes[idx]
                if node.kind == "stmt" and node.line == 5:
                    seen_close = True
                    assert (cfg.exit, "normal") in edge_kinds(cfg, idx)
                nxt.update(
                    dst for dst, kind in cfg.succs[idx] if kind == "normal"
                )
            frontier = nxt
            if seen_close or not frontier:
                break
        assert seen_close

    def test_exception_in_try_finally_routes_through_finally(self):
        src = (
            "def f(res):\n"
            "    try:\n"
            "        work(res)\n"          # line 3
            "    finally:\n"
            "        res.close()\n"
        )
        cfg = cfg_of(src)
        body = node_at(cfg, 3)
        # The raising statement must not jump straight to exc_exit.
        assert (cfg.exc_exit, "exc") not in edge_kinds(cfg, body.idx)
        assert any(kind == "exc" for _d, kind in cfg.succs[body.idx])


class TestLoops:
    SRC_LOOP = (
        "def f(items):\n"
        "    total = 0\n"
        "    for item in items:\n"   # line 3: header
        "        total += item\n"    # line 4: body
        "    return total\n"         # line 6? no - line 5
    )

    def test_back_skip_and_loop_once_edges(self):
        cfg = cfg_of(self.SRC_LOOP)
        header = node_at(cfg, 3)
        body = node_at(cfg, 4)
        ret = node_at(cfg, 5)
        kinds = edge_kinds(cfg, body.idx)
        assert (header.idx, "back") in kinds          # re-iteration
        assert (ret.idx, "normal") in kinds           # loop-once exit
        assert (ret.idx, "skip") in edge_kinds(cfg, header.idx)  # zero-iter

    def test_ignoring_back_and_skip_leaves_loop_once(self):
        cfg = cfg_of(self.SRC_LOOP)
        body = node_at(cfg, 4)
        succ = cfg.successors(body.idx, ignore=("back", "skip"))
        assert all(kind == "normal" for _dst, kind in succ)

    def test_while_true_has_no_skip_edge(self):
        src = (
            "def f(q):\n"
            "    while True:\n"
            "        if q.step():\n"
            "            break\n"
            "    return q\n"
        )
        cfg = cfg_of(src)
        header = node_at(cfg, 2)
        assert all(kind != "skip" for _d, kind in cfg.succs[header.idx])
