"""Seeded SRP002 violations: float arithmetic in the exact-integer core."""
import math


def midpoint(t0, t1):
    return (t0 + t1) / 2  # BAD: true division


def weight(distance):
    scale = 0.5  # BAD: float literal
    return float(distance) * scale  # BAD: float() conversion


def diagonal(length):
    return length * math.sqrt(2)  # BAD: math.sqrt is not integer-safe


def span(cells):
    return math.floor(len(cells)) + math.isqrt(4)  # fine: integer-safe math
