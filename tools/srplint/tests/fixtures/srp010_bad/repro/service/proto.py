"""Protocol exhaustiveness fixtures — seeded violations."""

VALID_OPS = ("plan", "ping")


def make_requests():
    plan = {"op": "plan", "id": 1}
    ping = {"op": "ping"}
    mystery = {"op": "mystery", "id": 2}
    return plan, ping, mystery


class Worker:
    def _op_plan(self, msg):
        return {"status": "ok"}

    def _op_ghost(self, msg):
        return {"status": "gone"}


def dispatch(op, msg):
    if op == "ping":
        return {"status": "pong"}
    return {"status": "error"}
