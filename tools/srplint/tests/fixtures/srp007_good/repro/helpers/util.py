"""Deterministic helpers: derived stamps and reporting-only timing."""

import time


def stamp_of(query_id):
    return query_id * 31


def span_ms():
    # perf_counter feeds reporting only and is allowed everywhere.
    return int(time.perf_counter() * 1000)
