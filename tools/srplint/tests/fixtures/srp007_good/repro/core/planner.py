"""SRP003-scoped root whose helpers stay deterministic (companion good)."""

from repro.helpers.util import span_ms, stamp_of


def plan_route(query_id):
    stamp = stamp_of(query_id)
    span = span_ms()
    seen = set()
    oid = id(query_id)  # srplint: allow(SRP007) same-call membership probe only
    if oid not in seen:
        seen.add(oid)
    return (query_id, stamp, span)
