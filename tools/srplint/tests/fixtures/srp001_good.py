"""SRP001-clean store: every mutating exit path bumps the version."""


class TidyStore(SegmentStore):  # noqa: F821 — parsed, never executed
    """Fixture store exercising the shapes SRP001 must accept."""

    def __init__(self):
        super().__init__()
        self._segments = []
        self._index = {}

    def insert(self, segment):
        self._segments.append(segment)
        self._bump_insert(segment)
        return segment

    def remove(self, segment_id):
        for idx, seg in enumerate(self._segments):
            if seg.segment_id == segment_id:
                removed = self._segments.pop(idx)
                self._bump_version()
                return removed
        raise KeyError(segment_id)  # raise exits may leave the store untouched

    def prune(self, horizon):
        kept = [s for s in self._segments if s.t1 >= horizon]
        if len(kept) == len(self._segments):
            return 0  # no-op exit before any mutation
        dropped = len(self._segments) - len(kept)
        self._segments = kept
        self._bump_version()
        return dropped

    def clear(self):
        if not self._segments:
            return
        self._segments.clear()
        self.version = next_version()  # noqa: F821 — ledger-style bump

    def snapshot(self):
        return list(self._segments)  # reads never need a bump


class Plain:
    """Not a store: mutations here are out of scope."""

    def __init__(self):
        self._stuff = []

    def push(self, item):
        self._stuff.append(item)
