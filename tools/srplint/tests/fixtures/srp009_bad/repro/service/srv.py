"""Thread-shared-state fixtures — seeded violations."""

import threading


class Dispatcher:
    def __init__(self):
        self._lock = threading.Lock()
        self.active = 0
        self.done = 0

    def start(self):
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        while True:
            self.active += 1
            with self._lock:
                self.done += 1

    def shutdown(self):
        self.active = 0
        with self._lock:
            self.done = 0


def run_workers(jobs):
    results = []
    state = threading.Lock()
    flag = True

    def consumer():
        nonlocal flag
        results.append(1)
        with state:
            flag = False

    worker = threading.Thread(target=consumer, daemon=True)
    worker.start()
    results.append(len(jobs))
    with state:
        flag = True
    return results
