"""Acquire/release pairing fixtures — seeded violations.

``leak_on_exception`` is the canonical seeded mutation: the hold is
taken, the happy path binds it, but the release was removed from the
exception edge between the two.
"""


def leak_on_exception(planner, qid, key, payload):
    if not planner.claim_boundary_hold(qid, key, 0, 10):
        planner.abort_commit(qid)
        return {"status": "refused"}
    encoded = encode(payload)
    planner.bind_boundary_claims(qid)
    return {"status": "ok", "route": encoded}


def leak_on_return(planner, qid, key):
    if not planner.claim_boundary_crossing(qid, key):
        planner.abort_commit(qid)
        return {"status": "refused"}
    if key[2] < 0:
        return {"status": "error"}
    planner.bind_boundary_claims(qid)
    return {"status": "ok"}


def leak_recovery_hold(planner, qid, cell, now):
    planner.commit_recovery_hold(qid, cell, now, now + 5)
    revised = planner.replan_from(qid, cell, now)
    planner.release_recovery_hold(qid)
    return revised


def encode(payload):
    return list(payload)
