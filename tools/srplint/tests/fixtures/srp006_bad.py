"""Seeded SRP006 violations: float-dtyped arrays in the integer core."""
from array import array

import numpy as np


def missing_dtype(n):
    return np.zeros(n)  # BAD: defaults to float64


def float_dtype(n):
    return np.empty(n, dtype=np.float64)  # BAD: explicit float dtype


def float_string_dtype(buf):
    return np.frombuffer(buf, dtype="f8")  # BAD: float dtype code


def float_arange(n):
    return np.arange(n, dtype=np.float32)  # BAD: float dtype on arange


def sampled(n):
    return np.linspace(0, 1, n)  # BAD: linspace is float by construction


def float_column(values):
    return array("d", values)  # BAD: float typecode


def fine_shapes(n, buf):
    a = np.zeros(n, dtype=np.int64)  # fine: explicit integer dtype
    b = np.frombuffer(buf, dtype="i8")  # fine: integer dtype code
    c = np.arange(n)  # fine: int args yield int64
    d = array("q", [1, 2])  # fine: integer typecode
    e = np.fromiter((x for x in range(n)), dtype=bool, count=n)  # fine: bool
    return a, b, c, d, e
