"""Seeded SRP004 violations: structured errors raised without context."""


def plan_or_die(query):
    if query is None:
        raise PlanningFailedError("no route")  # noqa: F821  # BAD: bare
    raise SimulationError("robot desync")  # noqa: F821  # BAD: bare


def plan_with_context(query, err):
    if query.release_time < 0:
        raise PlanningFailedError(  # noqa: F821  # fine: has diagnostics
            "negative release", query_id=query.query_id, phase="intake",
        )
    if err is not None:
        raise err  # fine: re-raise of a caught instance
    raise CollisionError("cell contested")  # noqa: F821  # fine: subclass
