"""Seeded SRP005 violations: cache keys/values dropping the version."""

WINDOW_TAG = -1
SHIFT_TAG = -2
CROSSING_TAG = -3


def file_window(cache, strip, origin, dest, store):
    key = (WINDOW_TAG, strip, origin, dest)  # BAD: no version component
    cache.put(key, store.plan)


def file_crossing(cache, a, b, t, pa, pb):
    cache.put((CROSSING_TAG, a, b, t, pa, pb), None)  # BAD: no versions


def file_shift(cache, strip, origin, dest, t, horizon, encoded):
    skey = (SHIFT_TAG, strip, origin, dest, t)  # fine: version lives in value
    cache.put(skey, (horizon, encoded))  # BAD: value drops the version stamp


def file_untagged(cache, strip, origin, dest, t):
    memo_key = (strip, origin, dest, t, t + 1)  # BAD: 5-tuple key, no version
    cache.put(memo_key, None)


def file_ok(cache, strip, origin, dest, t, store, horizon, encoded):
    key = (strip, origin, dest, t, store.version)  # fine: versioned
    cache.put(key, None)
    wkey = (WINDOW_TAG, strip, origin, dest, store.version)  # fine
    cache.put(wkey, None)
    skey = (SHIFT_TAG, strip, origin, dest, t)
    cache.put(skey, (store.version, horizon, encoded))  # fine: stamped value
    short = (strip, t)  # fine: too short to be a composite cache key
    return short
