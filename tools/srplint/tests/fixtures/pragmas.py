"""Pragma fixtures: suppression with reasons, and malformed pragmas."""


def hit_rate(hits, misses):
    total = hits + misses
    if not total:
        return 0.0  # srplint: allow-float reporting ratio, never fed to routes
    return hits / total  # srplint: allow-float reporting ratio


def bad_rate(hits, misses):
    return hits / (misses + 1)  # srplint: allow-float
    # ^ BAD: a pragma without a reason reports SRP000 and does NOT suppress,
    #   so the division above is also still reported as SRP002


def leftover(value):
    return value * 0.25  # BAD (SRP002): no pragma at all
