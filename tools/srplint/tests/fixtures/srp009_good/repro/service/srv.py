"""Thread-shared-state fixtures — clean companions.

Every write to cross-thread state happens under the lock, except the
heartbeat counter, which is declared racy-by-design with a file-scoped
``shared(...)`` pragma.
"""

import threading

# srplint: shared(beat) monotonic telemetry heartbeat; readers tolerate racy values by design


class Worker:
    def __init__(self):
        self._state = threading.Condition()
        self.pending = 0
        self.beat = 0

    def start(self):
        threading.Thread(target=self._loop, daemon=True).start()

    def _loop(self):
        with self._state:
            self.pending -= 1
        self.beat += 1

    def put(self):
        with self._state:
            self.pending += 1
        self.beat = 0


def run_workers(jobs):
    results = []
    state = threading.Lock()

    def consumer():
        with state:
            results.append(1)

    worker = threading.Thread(target=consumer, daemon=True)
    worker.start()
    with state:
        results.append(len(jobs))
    return results
