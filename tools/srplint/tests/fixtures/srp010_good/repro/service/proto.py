"""Protocol exhaustiveness fixtures — clean companions.

Every constructed op is handled (via an ``_op_`` method, a comparison,
or the ``*_OPS`` validity gate) and every handled op is constructed.
"""

SHARD_OPS = ("plan", "shutdown")


def make_requests():
    return [{"op": "plan"}, {"op": "shutdown"}, {"op": "stats"}]


class Worker:
    def _op_stats(self, msg):
        return {"status": "ok"}


def loop(msg):
    if msg.get("op") == "shutdown":
        return None
    return msg["op"]
