"""SRP003-scoped root whose helpers hide nondeterminism (seeded bad)."""

from repro.helpers.util import laundered_stamp, lookup_env


def plan_route(query_id):
    stamp = laundered_stamp()
    flavour = lookup_env()
    marker = id(query_id)
    return (query_id, stamp, flavour, marker)
