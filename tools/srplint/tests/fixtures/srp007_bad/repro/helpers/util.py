"""Out-of-scope helper module: SRP003 never looks here."""

import os
import time


def laundered_stamp():
    return deep_stamp()


def deep_stamp():
    return int(time.time())


def lookup_env():
    return os.getenv("ROUTE_FLAVOUR")


def unreachable_clock():
    # Not called from any planning root: must NOT be flagged.
    return time.time()
