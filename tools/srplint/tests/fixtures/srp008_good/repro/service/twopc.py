"""Acquire/release pairing fixtures — clean companions.

Every shape the rule must stay silent on: rollback on every exception
edge, the 2PC hand-off pragma on the success return, and the
acquire-loop/release-loop pattern under the loop-once abstraction.
"""


def prepare_handoff(planner, qid, key, payload):
    if not planner.claim_boundary_hold(qid, key, 0, 10):
        planner.abort_commit(qid)
        return {"status": "refused"}
    try:
        encoded = encode(payload)
    except Exception:
        planner.abort_commit(qid)
        raise
    return {"status": "ok", "route": encoded}  # srplint: holds(claim_boundary_hold) prepare hands the claim to its coordinator


def balanced_exception(planner, qid, key):
    if not planner.claim_boundary_crossing(qid, key):
        planner.abort_commit(qid)
        return {"status": "refused"}
    try:
        planner.bind_boundary_claims(qid)
    except Exception:
        planner.abort_commit(qid)
        raise
    return {"status": "ok"}


def released_in_finally(planner, qid, cell, now):
    planner.commit_recovery_hold(qid, cell, now, now + 5)
    try:
        return planner.replan_from(qid, cell, now)
    finally:
        planner.release_recovery_hold(qid)


def recover_cluster(planner, members, now):
    for member in members:
        planner.commit_recovery_hold(member.qid, member.cell, now, now + 5)
    routes = []
    for member in members:
        planner.release_recovery_hold(member.qid)
        routes.append(member.qid)
    return routes


def encode(payload):
    return list(payload)
