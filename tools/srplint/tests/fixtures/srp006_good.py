"""Clean SRP006 shapes: exact integer arrays throughout."""
from array import array

import numpy as np


def columns():
    return array("q"), array("i", [1, 2, 3])


def views(col):
    return np.frombuffer(col, dtype=np.int64)


def masks(n):
    blocked = np.full(n, 1 << 62, dtype=np.int64)
    flags = np.zeros(n, dtype=np.bool_)
    idx = np.arange(n)
    return blocked, flags, idx


def suppressed(n):
    # reporting-only buffer; seconds need sub-integer resolution here
    return np.zeros(n)  # srplint: allow(SRP006) wall-clock seconds, reporting only
