"""Seeded SRP003 violations: nondeterminism in planning code."""
import random
import time
from datetime import datetime


def stamp_release(query):
    query.release_time = int(time.time())  # BAD: wall clock
    query.day = datetime.now()  # BAD: wall clock
    return query


def jitter(route):
    return route[random.randint(0, 1)]  # BAD: unseeded module-level random


def order_strips(strip_ids):
    out = []
    for strip in {3, 1, 2}:  # BAD: set-literal iteration order
        out.append(strip)
    for strip in set(strip_ids):  # BAD: set(...) iteration order
        out.append(strip)
    return out


def seeded_ok(seed, items):
    rng = random.Random(seed)  # fine: seeded instance
    started = time.perf_counter()  # fine: reporting-only clock
    ordered = sorted(set(items))  # fine: sorted() defuses the set order
    return rng.choice(ordered), started
