"""Seeded SRP001 violations: container mutations escaping without a bump."""


class LeakyStore(SegmentStore):  # noqa: F821 — parsed, never executed
    """Fixture store exercising every unbumped-exit shape."""

    def __init__(self):
        super().__init__()
        self._segments = []
        self._index = {}

    def insert(self, segment):
        self._segments.append(segment)
        return segment  # BAD: returns dirty

    def prune(self, horizon):
        kept = [s for s in self._segments if s.t1 >= horizon]
        dropped = len(self._segments) - len(kept)
        self._segments = kept
        if dropped:
            self._bump_version()  # BAD: unconditional mutation, conditional bump

    def clear(self):
        if self._segments:
            self._bump_version()
        self._segments.clear()  # BAD: bump happens before the mutation

    def remove_via_alias(self, key):
        bucket = self._index.get(key)
        if bucket is None:
            raise KeyError(key)
        bucket.pop()
        return True  # BAD: alias mutation, no bump
