"""Re-export chain root: pkg.worker resolves through pkg.sub.api."""

from pkg.sub.api import exported_worker
