"""Call-graph fixture: cycles, methods, typed fields, nested defs."""


def helper():
    return worker()  # mutual recursion: the index must not hang


def worker():
    return helper()


def outer():
    def inner():
        return worker()

    return inner()


class Store:
    def __init__(self):
        self.version = 0

    def bump(self):
        self.version += 1
        return self.touch()

    def touch(self):
        return self.version

    def very_unique_probe(self):
        return 42


class Wrapper:
    def __init__(self):
        self.store = Store()

    def run(self):
        self.store.bump()
        local = Store()
        local.touch()
        mystery = load_anything()
        mystery.very_unique_probe()


def load_anything():
    return object()
