"""Caller through the re-export chain and a module alias."""

import pkg.impl as impl
from pkg import exported_worker


def drive():
    exported_worker()
    impl.helper()
