"""Middle hop of the re-export chain."""

from pkg.impl import worker as exported_worker
