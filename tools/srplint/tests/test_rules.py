"""Fixture-driven tests for the srplint rules.

Each seeded-violation fixture must produce the exact (code, line) pairs
listed here — no more, no fewer — and the companion "good" fixtures must
come back clean.  A final test asserts the real tree under ``src/`` is
clean, which is the same gate CI enforces via ``python -m srplint src/``.
"""

from pathlib import Path

from srplint.engine import default_rules, extract_pragmas, run_path, run_source

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[3]


def lint_fixture(name):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return run_source(source, str(FIXTURES / name),
                      rules=default_rules(), respect_scope=False)


def codes_and_lines(findings):
    return [(f.code, f.line) for f in findings]


class TestSRP001VersionBump:
    def test_seeded_violations_exact(self):
        findings = [f for f in lint_fixture("srp001_bad.py") if f.code == "SRP001"]
        assert codes_and_lines(findings) == [
            ("SRP001", 14),  # insert: return while dirty
            ("SRP001", 20),  # prune: conditional bump, unconditional mutation
            ("SRP001", 26),  # clear: bump before the mutation
            ("SRP001", 33),  # remove_via_alias: alias mutation, no bump
        ]

    def test_clean_store_shapes_accepted(self):
        assert lint_fixture("srp001_good.py") == []


class TestSRP002IntArithmetic:
    def test_seeded_violations_exact(self):
        findings = [f for f in lint_fixture("srp002_bad.py") if f.code == "SRP002"]
        assert codes_and_lines(findings) == [
            ("SRP002", 6),   # true division
            ("SRP002", 10),  # float literal
            ("SRP002", 11),  # float() conversion
            ("SRP002", 15),  # math.sqrt
        ]

    def test_integer_safe_math_not_flagged(self):
        lines = {f.line for f in lint_fixture("srp002_bad.py")}
        assert 19 not in lines  # math.floor / math.isqrt line


class TestSRP003Determinism:
    def test_seeded_violations_exact(self):
        findings = [f for f in lint_fixture("srp003_bad.py") if f.code == "SRP003"]
        assert codes_and_lines(findings) == [
            ("SRP003", 8),   # time.time
            ("SRP003", 9),   # datetime.now
            ("SRP003", 14),  # random.randint
            ("SRP003", 19),  # set-literal iteration
            ("SRP003", 21),  # set(...) iteration
        ]

    def test_seeded_and_reporting_uses_not_flagged(self):
        lines = {f.line for f in lint_fixture("srp003_bad.py")}
        # random.Random(seed), perf_counter, sorted(set(...)) are all fine
        assert not lines & {27, 28, 29}


class TestSRP004Diagnostics:
    def test_seeded_violations_exact(self):
        findings = [f for f in lint_fixture("srp004_bad.py") if f.code == "SRP004"]
        assert codes_and_lines(findings) == [
            ("SRP004", 6),  # bare PlanningFailedError
            ("SRP004", 7),  # bare SimulationError
        ]

    def test_contextful_reraise_and_subclass_not_flagged(self):
        lines = {f.line for f in lint_fixture("srp004_bad.py")}
        assert not lines & {12, 16, 17}


class TestSRP005CacheKeyVersion:
    def test_seeded_violations_exact(self):
        findings = [f for f in lint_fixture("srp005_bad.py") if f.code == "SRP005"]
        assert codes_and_lines(findings) == [
            ("SRP005", 9),   # WINDOW_TAG key without version
            ("SRP005", 14),  # CROSSING_TAG key without versions
            ("SRP005", 19),  # SHIFT_TAG value without version stamp
            ("SRP005", 23),  # untagged 5-tuple key without version
        ]

    def test_versioned_keys_not_flagged(self):
        lines = {f.line for f in lint_fixture("srp005_bad.py")}
        assert not lines & {27, 29, 32, 33}


class TestSRP006IntegerDtypes:
    def test_seeded_violations_exact(self):
        findings = [f for f in lint_fixture("srp006_bad.py") if f.code == "SRP006"]
        assert codes_and_lines(findings) == [
            ("SRP006", 8),   # np.zeros without dtype (float64 default)
            ("SRP006", 12),  # explicit float dtype
            ("SRP006", 16),  # float string dtype code
            ("SRP006", 20),  # arange with float dtype
            ("SRP006", 24),  # linspace
            ("SRP006", 28),  # array.array float typecode
        ]

    def test_integer_shapes_not_flagged(self):
        findings = [f for f in lint_fixture("srp006_bad.py") if f.code == "SRP006"]
        assert not {f.line for f in findings} & set(range(31, 40))

    def test_clean_columnar_shapes_accepted(self):
        findings = [f for f in lint_fixture("srp006_good.py") if f.code == "SRP006"]
        assert findings == []


class TestPragmas:
    def test_allow_float_with_reason_suppresses(self):
        findings = lint_fixture("pragmas.py")
        assert codes_and_lines(findings) == [
            ("SRP002", 12),  # division under a reason-less pragma still fires
            ("SRP000", 12),  # ...and the reason-less pragma itself is flagged
            ("SRP002", 18),  # un-pragma'd float literal
        ]

    def test_pragma_entries_feed_the_audit(self):
        source = (FIXTURES / "pragmas.py").read_text(encoding="utf-8")
        pragmas = extract_pragmas(source)
        assert [(line, directive) for line, directive, _ in pragmas.entries] == [
            (7, "allow-float"),
            (8, "allow-float"),
        ]
        assert all(reason for _, _, reason in pragmas.entries)

    def test_pragma_in_string_literal_ignored(self):
        source = 's = "# srplint: allow-float not a pragma"\nx = 1.5\n'
        findings = run_source(source, "repro/core/x.py", rules=default_rules())
        assert codes_and_lines(findings) == [("SRP002", 2)]

    def test_allow_code_form(self):
        source = (
            "import time\n"
            "t = time.time()  # srplint: allow(SRP003) fixture clock\n"
        )
        findings = run_source(source, "repro/core/x.py", rules=default_rules())
        assert findings == []


class TestEngine:
    def test_syntax_error_reported_not_raised(self):
        findings = run_source("def broken(:\n", "repro/core/x.py")
        assert [f.code for f in findings] == ["SRP000"]

    def test_scope_respected(self):
        source = "x = 1.5\n"
        assert run_source(source, "src/repro/core/a.py") != []
        assert run_source(source, "src/repro/simulation/a.py") == []

    def test_service_determinism_scope_split(self):
        """SRP003 covers the service's pure half but not its I/O half.

        The scheduler (``core.py``) and the telemetry registry
        (``telemetry.py``) must stay wall-clock-free; the socket
        frontend and the load generator are the designated homes for
        real time and must stay *out* of scope.
        """
        source = "import time\nnow = time.time()\n"
        in_scope = ("src/repro/service/core.py", "src/repro/service/telemetry.py")
        out_of_scope = (
            "src/repro/service/server.py",
            "src/repro/service/loadgen.py",
            "src/repro/service/protocol.py",
        )
        for path in in_scope:
            findings = run_source(source, path)
            assert [f.code for f in findings] == ["SRP003"], path
        for path in out_of_scope:
            assert run_source(source, path) == [], path

    def test_sharding_module_in_determinism_scope(self):
        """Region sharding replays bit-for-bit given the same partition,
        so ``repro/service/sharding.py`` is SRP003-scoped: no wall
        clock, no unseeded randomness, no unordered-set iteration in
        the partitioner, router, or workers."""
        path = "src/repro/service/sharding.py"
        clock = "import time\nnow = time.time()\n"
        assert [f.code for f in run_source(clock, path)] == ["SRP003"]
        set_iter = "def route(ids):\n    return [s for s in set(ids)]\n"
        assert [f.code for f in run_source(set_iter, path)] == ["SRP003"]
        rand = "import random\nchoice = random.randint(0, 3)\n"
        assert [f.code for f in run_source(rand, path)] == ["SRP003"]
        ok = (
            "import time\n"
            "def span():\n"
            "    return time.perf_counter()\n"
        )
        assert run_source(ok, path) == []

    def test_charging_modules_in_determinism_scope(self):
        """The battery/charging subsystem feeds route planning (charge
        trips commit occupancy), so ``repro/simulation/energy.py`` and
        ``repro/simulation/charging.py`` are SRP003-scoped: integer
        drain arithmetic, deterministic station placement, and
        wall-clock-free admission times."""
        clock = "import time\nnow = time.time()\n"
        rand = "import random\npad = random.randint(0, 3)\n"
        set_iter = "def pick(cells):\n    return [c for c in set(cells)]\n"
        for path in (
            "src/repro/simulation/energy.py",
            "src/repro/simulation/charging.py",
        ):
            for source in (clock, rand, set_iter):
                findings = run_source(source, path)
                assert [f.code for f in findings] == ["SRP003"], path

    def test_recovery_module_in_determinism_scope(self):
        """Joint cluster recovery replays from the fault seed, so
        ``repro/simulation/recovery.py`` is SRP003-scoped while the rest
        of the simulation package (real-time metrics sampling) is not."""
        source = "import time\nnow = time.time()\n"
        findings = run_source(source, "src/repro/simulation/recovery.py")
        assert [f.code for f in findings] == ["SRP003"]
        assert run_source(source, "src/repro/simulation/metrics.py") == []

    def test_clean_tree_zero_findings(self):
        """The committed tree must satisfy every invariant — same gate as CI."""
        src = REPO_ROOT / "src"
        assert src.is_dir()
        findings = []
        for path in sorted(src.rglob("*.py")):
            findings.extend(run_path(path))
        assert findings == [], "\n" + "\n".join(f.render() for f in findings)


class TestCLI:
    def test_exit_codes_and_github_format(self, tmp_path, capsys):
        from srplint.cli import main

        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("x = 2.5\n", encoding="utf-8")
        assert main([str(tmp_path), "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out and "title=SRP002" in out

        good = tmp_path / "repro" / "core" / "good.py"
        good.write_text("x = 2\n", encoding="utf-8")
        bad.unlink()
        assert main([str(tmp_path)]) == 0

    def test_select_unknown_code_is_usage_error(self):
        from srplint.cli import main

        assert main(["--select", "SRP999", "."]) == 2
