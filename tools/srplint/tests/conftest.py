"""Make the ``srplint`` package importable when pytest runs from the repo root."""

import sys
from pathlib import Path

_TOOLS_DIR = str(Path(__file__).resolve().parents[2])
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)
