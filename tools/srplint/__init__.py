"""srplint — AST-level invariant checker for the SRP reproduction.

The SRP planner's exactness rests on conventions that ordinary linters
cannot see: segment-store mutations must bump the shared content version
(or the plan cache serves stale routes), core arithmetic must stay on
ints (bit-identity of cached vs uncached routes), planning must be
deterministic, failures must carry diagnostics, and cache keys must
embed store versions.  srplint encodes each of those invariants as a
pluggable rule over the stdlib ``ast`` module — no third-party runtime
dependencies.

Rules
-----
SRP001  segment-store mutations must bump the content version on every
        exit path
SRP002  no float literals / true division / ``math.*`` float ops in
        ``core/`` and ``geometry/`` arithmetic
SRP003  no wall-clock or unseeded nondeterminism in planning code
SRP004  ``PlanningFailedError`` / ``SimulationError`` raises must attach
        diagnostics context
SRP005  plan-cache keys must include a version component

Run ``python -m srplint src/`` (with ``tools`` on ``PYTHONPATH``) or
``python tools/srplint src/``.  See ``docs/static-analysis.md``.
"""

from srplint.engine import Finding, Rule, default_rules, iter_python_files, run_path, run_source

__version__ = "0.1.0"

__all__ = [
    "Finding",
    "Rule",
    "default_rules",
    "iter_python_files",
    "run_path",
    "run_source",
    "__version__",
]
