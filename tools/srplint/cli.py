"""srplint command-line interface.

Usage::

    PYTHONPATH=tools python -m srplint src/ [--format text|github]
    PYTHONPATH=tools python -m srplint src/ tools/ --project --json
    python tools/srplint src/           # path bootstrap in __main__

Modes:

* default — per-file rules only (SRP001–SRP006), one file at a time;
* ``--project`` — additionally builds the whole-program index
  (:mod:`srplint.project`) once and runs the project rules
  (SRP007–SRP010: transitive determinism, acquire/release pairing,
  thread-shared-state discipline, protocol exhaustiveness).

Output: classic ``path:line:col: CODE message`` lines, ``--format
github`` workflow-command annotations, or ``--json`` (a single object
with findings, per-rule counts and the pragma audit — consumed by
``benchmarks/check_regression.py`` and CI).  ``--summary PATH``
appends a markdown job summary (per-rule counts + pragma inventory),
``$GITHUB_STEP_SUMMARY``-ready.

``--cache PATH`` keeps a content-hash result cache: the run key hashes
every linted file, the rule selection and the mode, so an unchanged
tree re-reports instantly without re-analysis.  ``--report-unused-
pragmas`` (implies ``--project``) fails the run when a ``# srplint:``
suppression no longer suppresses anything — dead pragmas rot into
blanket exemptions otherwise.

Exit status: 0 clean, 1 findings (or dead pragmas), 2 usage errors.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from srplint.engine import (
    Finding,
    TOOL_CODE,
    default_rules,
    iter_python_files,
    run_path,
)

_CACHE_VERSION = 1
_CACHE_KEEP = 8
_DEFAULT_EXCLUDE = ("tests/fixtures",)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="srplint",
        description="AST-level invariant checker for the SRP reproduction.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--project", action="store_true",
        help="whole-program mode: build the module index + call graph "
             "and run the project rules (SRP007-SRP010)",
    )
    parser.add_argument(
        "--format", choices=("text", "github"), default="text",
        help="output format: human-readable lines or GitHub annotations",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit one JSON object (findings, counts, pragma audit) "
             "instead of text lines",
    )
    parser.add_argument(
        "--summary", metavar="PATH",
        help="append a markdown run summary to PATH "
             "(pass $GITHUB_STEP_SUMMARY in CI)",
    )
    parser.add_argument(
        "--cache", metavar="PATH",
        help="content-hash result cache file; unchanged trees "
             "re-report without re-analysis",
    )
    parser.add_argument(
        "--report-unused-pragmas", action="store_true",
        help="fail when a '# srplint:' pragma no longer suppresses or "
             "informs anything (implies --project)",
    )
    parser.add_argument(
        "--exclude", action="append", default=None, metavar="SUBSTRING",
        help="skip files whose path contains SUBSTRING "
             f"(default: {', '.join(_DEFAULT_EXCLUDE)})",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the summary line",
    )
    return parser


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
def _run_key(
    files: Sequence[Path], rule_codes: Sequence[str], mode: str
) -> str:
    digest = hashlib.sha256()
    digest.update(f"v{_CACHE_VERSION}|{mode}|{','.join(rule_codes)}".encode())
    for path in files:
        digest.update(path.as_posix().encode())
        digest.update(hashlib.sha256(path.read_bytes()).hexdigest().encode())
    return digest.hexdigest()


def _cache_load(cache_path: str, key: str) -> Optional[dict]:
    try:
        store = json.loads(Path(cache_path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if store.get("version") != _CACHE_VERSION:
        return None
    entry = store.get("runs", {}).get(key)
    return entry if isinstance(entry, dict) else None


def _cache_store(cache_path: str, key: str, result: dict) -> None:
    path = Path(cache_path)
    try:
        store = json.loads(path.read_text(encoding="utf-8"))
        if store.get("version") != _CACHE_VERSION:
            raise ValueError
    except (OSError, ValueError):
        store = {"version": _CACHE_VERSION, "runs": {}, "order": []}
    runs = store.setdefault("runs", {})
    order = store.setdefault("order", [])
    if key in runs:
        order = [k for k in order if k != key]
    runs[key] = result
    order.append(key)
    while len(order) > _CACHE_KEEP:
        runs.pop(order.pop(0), None)
    store["order"] = order
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(store, indent=1), encoding="utf-8")
    except OSError:
        pass  # an unwritable cache must never fail the lint


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
def _execute(
    files: List[Path],
    rules,
    project_mode: bool,
    audit_pragmas: bool,
    exclude: Sequence[str],
    paths: Sequence[str],
) -> dict:
    """Run the lint and return the JSON-shaped result object."""
    findings: List[Finding]
    pragma_entries: List[Tuple[str, int, str, str]] = []
    unused: List[Tuple[str, int, str, str]] = []
    if project_mode:
        from srplint.project import run_project

        findings, project = run_project(
            [str(p) for p in paths], rules=rules, exclude=exclude
        )
        active = {rule.code for rule in rules}
        for path in sorted(project.modules):
            pragmas = project.modules[path].pragmas
            for line, directive, reason in pragmas.entries:
                pragma_entries.append((path, line, directive, reason))
            if audit_pragmas:
                for line, directive, reason in pragmas.unused_entries(active):
                    unused.append((path, line, directive, reason))
    else:
        findings = []
        for path in files:
            findings.extend(run_path(path, rules=rules))

    for path, line, directive, reason in unused:
        findings.append(
            Finding(
                path, line, 0, TOOL_CODE,
                f"unused srplint pragma '{directive}' — nothing here "
                "triggers the rule it suppresses; delete it "
                f"(stale reason: {reason})",
            )
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    return {
        "files_checked": len(files),
        "findings": [
            {"path": f.path, "line": f.line, "col": f.col,
             "code": f.code, "message": f.message}
            for f in findings
        ],
        "counts": counts,
        "pragmas": [
            {"path": p, "line": ln, "directive": d, "reason": r}
            for p, ln, d, r in pragma_entries
        ],
        "unused_pragmas": [
            {"path": p, "line": ln, "directive": d, "reason": r}
            for p, ln, d, r in unused
        ],
    }


def _write_summary(summary_path: str, result: dict, rules) -> None:
    names = {rule.code: rule.name for rule in rules}
    lines = ["## srplint", ""]
    lines.append(f"{result['files_checked']} file(s) checked, "
                 f"{len(result['findings'])} finding(s).")
    lines.append("")
    lines.append("| rule | findings |")
    lines.append("| --- | ---: |")
    for rule in rules:
        lines.append(
            f"| {rule.code} {names[rule.code]} "
            f"| {result['counts'].get(rule.code, 0)} |"
        )
    tool_count = result["counts"].get(TOOL_CODE, 0)
    if tool_count:
        lines.append(f"| {TOOL_CODE} tool/pragma-audit | {tool_count} |")
    lines.append("")
    pragmas = result.get("pragmas", [])
    lines.append(f"### pragma inventory ({len(pragmas)})")
    lines.append("")
    for entry in pragmas:
        mark = " **(unused)**" if any(
            u["path"] == entry["path"] and u["line"] == entry["line"]
            for u in result.get("unused_pragmas", [])
        ) else ""
        lines.append(
            f"- `{entry['path']}:{entry['line']}` `{entry['directive']}` "
            f"— {entry['reason']}{mark}"
        )
    lines.append("")
    with open(summary_path, "a", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    rules = default_rules()
    if args.report_unused_pragmas:
        args.project = True

    if args.list_rules:
        for rule in rules:
            doc = (type(rule).__doc__ or "").strip().splitlines()[0]
            print(f"{rule.code}  {rule.name:<24} {doc}")
        return 0

    if args.select:
        wanted = {code.strip().upper() for code in args.select.split(",")}
        unknown = wanted - {rule.code for rule in rules}
        if unknown:
            print(f"srplint: unknown rule code(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.code in wanted]

    exclude = tuple(args.exclude) if args.exclude else _DEFAULT_EXCLUDE
    files = sorted(iter_python_files(args.paths, exclude=exclude))
    if not files:
        print(f"srplint: no python files found under: {' '.join(args.paths)}",
              file=sys.stderr)
        return 2

    mode = "project" if args.project else "files"
    if args.report_unused_pragmas:
        mode += "+pragma-audit"
    cache_state = None
    result: Optional[dict] = None
    key = ""
    if args.cache:
        key = _run_key(files, [r.code for r in rules], mode)
        result = _cache_load(args.cache, key)
        cache_state = "hit" if result is not None else "miss"
    if result is None:
        result = _execute(
            files, rules, args.project, args.report_unused_pragmas,
            exclude, args.paths,
        )
        if args.cache:
            _cache_store(args.cache, key, result)
    result["cache"] = cache_state

    findings = [
        Finding(f["path"], f["line"], f["col"], f["code"], f["message"])
        for f in result["findings"]
    ]
    if args.as_json:
        print(json.dumps(result, indent=1))
    else:
        for finding in findings:
            if args.format == "github":
                print(finding.render_github())
            else:
                print(finding.render())

    if args.summary:
        _write_summary(args.summary, result, rules)

    if not args.quiet and not args.as_json:
        status = f"{len(findings)} finding(s)" if findings else "clean"
        suffix = f" [cache {cache_state}]" if cache_state else ""
        print(
            f"srplint: {result['files_checked']} file(s) checked, "
            f"{status}{suffix}",
            file=sys.stderr,
        )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
