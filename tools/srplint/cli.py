"""srplint command-line interface.

Usage::

    PYTHONPATH=tools python -m srplint src/ [--format text|github]
    python tools/srplint src/           # path bootstrap in __main__

Exit status: 0 when no findings, 1 when any finding is reported, 2 on
usage errors.  ``--format github`` emits GitHub Actions workflow-command
annotations so findings attach to the offending lines in PR diffs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from srplint.engine import Finding, default_rules, iter_python_files, run_path


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="srplint",
        description="AST-level invariant checker for the SRP reproduction.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "github"), default="text",
        help="output format: human-readable lines or GitHub annotations",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the summary line",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    rules = default_rules()

    if args.list_rules:
        for rule in rules:
            doc = (type(rule).__doc__ or "").strip().splitlines()[0]
            print(f"{rule.code}  {rule.name:<20} {doc}")
        return 0

    if args.select:
        wanted = {code.strip().upper() for code in args.select.split(",")}
        unknown = wanted - {rule.code for rule in rules}
        if unknown:
            print(f"srplint: unknown rule code(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.code in wanted]

    findings: List[Finding] = []
    checked = 0
    for path in iter_python_files(args.paths):
        checked += 1
        findings.extend(run_path(path, rules=rules))

    if checked == 0:
        print(f"srplint: no python files found under: {' '.join(args.paths)}",
              file=sys.stderr)
        return 2

    for finding in findings:
        if args.format == "github":
            print(finding.render_github())
        else:
            print(finding.render())

    if not args.quiet:
        status = f"{len(findings)} finding(s)" if findings else "clean"
        print(f"srplint: {checked} file(s) checked, {status}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
