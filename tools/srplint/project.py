"""Project-wide module index and call graph (srplint's whole-program layer).

Per-file AST rules cannot see the invariants the planner's correctness
now rests on: determinism laundered through a helper module, a 2PC
prepare that leaks a claim on one exception edge, a message type
constructed in one module and dispatched (or not) in another.  This
module builds — once per run — everything those analyses share:

* a **module index**: every ``.py`` file under the linted paths, parsed
  once, with its dotted module name derived from ``__init__.py``
  package roots and its pragma table attached;
* a **function index**: one :class:`FunctionInfo` per function, method
  and *nested* function (qualified ``module.Class.method`` /
  ``module.func.inner`` names) plus a ``<module>`` pseudo-function for
  module-level code;
* a **class index** with methods, project-resolved bases, and a light
  attribute-type map (``self.planner = SRPPlanner(...)`` in any method
  records ``planner -> repro.core.planner.SRPPlanner``);
* a **call graph**: for each function, the project functions it may
  call.  Resolution handles plain names (local defs, nested defs,
  ``from x import y`` including re-export chains, ``import x as m``),
  ``self.``/``cls.`` methods through project-internal bases, attributes
  of typed ``self`` fields and of locally constructed instances, and —
  as a last resort — a *unique-method* heuristic: an unresolved
  ``obj.meth(...)`` links to ``meth`` when exactly one project class
  defines it and the name is not a generic container/IO verb.

Everything is standard-library ``ast``; nothing is imported or
executed.  The graph **over-approximates** (extra edges are possible,
e.g. through the unique-method heuristic) which is the safe direction
for SRP007's closure; the pragma escape hatches cover the residue.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from srplint.engine import (
    Finding,
    Pragmas,
    Rule,
    TOOL_CODE,
    extract_pragmas,
    iter_python_files,
)

#: method names too generic to resolve by uniqueness — linking ``.get``
#: or ``.append`` to some project class would wire the graph to every
#: dict and list in the tree
_GENERIC_NAMES = frozenset({
    "get", "set", "items", "keys", "values", "append", "extend", "insert",
    "add", "pop", "remove", "discard", "clear", "update", "copy", "sort",
    "reverse", "index", "count", "join", "split", "strip", "read", "write",
    "readline", "flush", "open", "close", "start", "stop", "wait", "notify",
    "notify_all", "acquire", "release", "put", "send", "recv", "encode",
    "decode", "format", "render", "reset", "run", "main", "check", "handle",
    "plan", "request", "submit", "setdefault",
})

_MODULE_FUNC = "<module>"


@dataclass
class ModuleInfo:
    """One parsed module: tree, source, pragmas, dotted name."""

    path: str
    name: str
    tree: ast.Module
    source: str
    pragmas: Pragmas
    #: alias -> dotted target for every import binding in the module
    imports: Dict[str, str] = field(default_factory=dict)
    #: module-level definition names (functions, classes, assignments)
    defs: Dict[str, str] = field(default_factory=dict)


@dataclass
class FunctionInfo:
    """One function/method/nested function (or ``<module>`` body)."""

    qualname: str
    module: ModuleInfo
    node: Optional[ast.AST]  # FunctionDef/AsyncFunctionDef; None = <module>
    class_name: Optional[str] = None

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 1)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    """One project class: methods, bases (as written), attr types."""

    qualname: str
    module: ModuleInfo
    node: ast.ClassDef
    methods: Dict[str, str] = field(default_factory=dict)
    base_names: List[str] = field(default_factory=list)
    #: self attribute -> class qualname (from ``self.x = Cls(...)``)
    attr_types: Dict[str, str] = field(default_factory=dict)


def module_name_for(path: Path) -> str:
    """Dotted module name of *path*, walking ``__init__.py`` package roots."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.resolve().parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


class ProjectIndex:
    """The whole-program index every project rule shares."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}        # by path (posix)
        self.by_name: Dict[str, ModuleInfo] = {}        # by dotted name
        self.functions: Dict[str, FunctionInfo] = {}    # by qualname
        self.classes: Dict[str, ClassInfo] = {}         # by qualname
        #: caller qualname -> [(callee qualname, call node), ...]
        self.calls: Dict[str, List[Tuple[str, ast.Call]]] = {}
        #: method name -> class qualnames defining it
        self.method_index: Dict[str, List[str]] = {}
        #: findings produced while building (unparsable files, pragma errors)
        self.build_findings: List[Finding] = []

    # -- construction --------------------------------------------------
    @classmethod
    def build(
        cls, paths: Iterable[str], exclude: Sequence[str] = ()
    ) -> "ProjectIndex":
        project = cls()
        for path in iter_python_files(paths, exclude=exclude):
            project._index_file(path)
        for module in project.modules.values():
            project._collect_imports(module)
        for module in project.modules.values():
            project._collect_defs(module)
        for info in project.classes.values():
            project._collect_attr_types(info)
        for module in project.modules.values():
            project._collect_calls(module)
        return project

    def _index_file(self, path: Path) -> None:
        posix = path.as_posix()
        source = path.read_text(encoding="utf-8")
        pragmas = extract_pragmas(source)
        for line, col, message in pragmas.errors:
            self.build_findings.append(
                Finding(posix, line, col, TOOL_CODE, message)
            )
        try:
            tree = ast.parse(source, filename=posix)
        except SyntaxError as exc:
            self.build_findings.append(
                Finding(posix, exc.lineno or 1, (exc.offset or 1) - 1,
                        TOOL_CODE, f"could not parse file: {exc.msg}")
            )
            return
        module = ModuleInfo(posix, module_name_for(path), tree, source, pragmas)
        self.modules[posix] = module
        self.by_name[module.name] = module

    def _collect_imports(self, module: ModuleInfo) -> None:
        package = module.name.rsplit(".", 1)[0] if "." in module.name else ""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    module.imports[bound] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    # Relative: strip (level - 1) trailing components off
                    # the package of this module.
                    base_parts = package.split(".") if package else []
                    if node.level - 1:
                        base_parts = base_parts[: -(node.level - 1)] or []
                    base = ".".join(base_parts)
                else:
                    base = node.module or ""
                if node.level and node.module:
                    base = f"{base}.{node.module}" if base else node.module
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    module.imports[bound] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )

    def _collect_defs(self, module: ModuleInfo) -> None:
        mod_fn = FunctionInfo(f"{module.name}.{_MODULE_FUNC}", module, None)
        self.functions[mod_fn.qualname] = mod_fn
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(module, stmt, prefix=module.name,
                                     class_name=None)
                module.defs[stmt.name] = f"{module.name}.{stmt.name}"
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(module, stmt)
                module.defs[stmt.name] = f"{module.name}.{stmt.name}"
            else:
                for target in _assigned_names(stmt):
                    module.defs.setdefault(
                        target, f"{module.name}.{target}"
                    )

    def _index_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        info = ClassInfo(qualname, module, node)
        for base in node.bases:
            name = _dotted_name(base)
            if name:
                info.base_names.append(name)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._index_function(
                    module, stmt, prefix=qualname, class_name=node.name
                )
                info.methods[stmt.name] = fn.qualname
                self.method_index.setdefault(stmt.name, []).append(qualname)
            elif isinstance(stmt, ast.ClassDef):  # nested class: index flat
                self._index_class(module, stmt)
        self.classes[qualname] = info

    def _index_function(
        self,
        module: ModuleInfo,
        node: ast.AST,
        prefix: str,
        class_name: Optional[str],
    ) -> FunctionInfo:
        qualname = f"{prefix}.{node.name}"  # type: ignore[attr-defined]
        fn = FunctionInfo(qualname, module, node, class_name)
        self.functions[qualname] = fn
        for stmt in ast.walk(node):  # nested defs get their own entry
            if stmt is node:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._enclosing_is(node, stmt):
                    self._index_function(
                        module, stmt, prefix=qualname, class_name=class_name
                    )
        return fn

    @staticmethod
    def _enclosing_is(outer: ast.AST, inner: ast.AST) -> bool:
        """True when *inner* is nested directly in *outer* (no def between)."""
        stack = [(outer, False)]
        while stack:
            node, crossed = stack.pop()
            for child in ast.iter_child_nodes(node):
                if child is inner:
                    return not crossed
                nested = isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ) and child is not inner
                stack.append((child, crossed or nested))
        return False

    def _collect_attr_types(self, info: ClassInfo) -> None:
        module = info.module
        for method_qualname in info.methods.values():
            fn = self.functions[method_qualname]
            if fn.node is None:
                continue
            for stmt in ast.walk(fn.node):
                if not isinstance(stmt, ast.Assign):
                    continue
                if not isinstance(stmt.value, ast.Call):
                    continue
                cls_qual = self._resolve_class(module, stmt.value.func)
                if cls_qual is None:
                    continue
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        info.attr_types[target.attr] = cls_qual

    def _resolve_class(
        self, module: ModuleInfo, func: ast.AST
    ) -> Optional[str]:
        """Resolve a constructor expression to a project class qualname."""
        name = _dotted_name(func)
        if name is None:
            return None
        target = self.resolve_symbol(module, name)
        if target is not None and target in self.classes:
            return target
        return None

    # -- symbol resolution ---------------------------------------------
    def resolve_symbol(
        self, module: ModuleInfo, dotted: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Resolve a (possibly dotted) name in *module* to a project qualname.

        Follows the import table and re-export chains; returns a
        function/class qualname, a module name, or None for anything
        outside the project.
        """
        seen = _seen if _seen is not None else set()
        key = f"{module.name}:{dotted}"
        if key in seen:
            return None
        seen.add(key)
        head, _, rest = dotted.partition(".")
        target: Optional[str] = None
        if head in module.defs:
            target = module.defs[head]
        elif head in module.imports:
            target = module.imports[head]
        elif dotted in self.by_name:
            return dotted
        else:
            return None
        full = f"{target}.{rest}" if rest else target
        # A direct hit on a function/class qualname is final.
        if full in self.functions or full in self.classes:
            return full
        if full in self.by_name:
            return full
        # Otherwise split into the longest module prefix + symbol chain
        # and recurse through that module's bindings (re-exports).
        parts = full.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod_name = ".".join(parts[:cut])
            if mod_name in self.by_name:
                inner = self.by_name[mod_name]
                sym = ".".join(parts[cut:])
                if inner is module and sym == dotted:
                    return None
                return self.resolve_symbol(inner, sym, seen)
        return None

    def resolve_base(
        self, module: ModuleInfo, base_name: str
    ) -> Optional[ClassInfo]:
        target = self.resolve_symbol(module, base_name)
        if target is not None and target in self.classes:
            return self.classes[target]
        return None

    def resolve_method(
        self, class_qual: str, method: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Find *method* on the class or its project-internal bases."""
        seen = _seen if _seen is not None else set()
        if class_qual in seen or class_qual not in self.classes:
            return None
        seen.add(class_qual)
        info = self.classes[class_qual]
        if method in info.methods:
            return info.methods[method]
        for base_name in info.base_names:
            base = self.resolve_base(info.module, base_name)
            if base is not None:
                found = self.resolve_method(base.qualname, method, seen)
                if found is not None:
                    return found
        return None

    # -- call graph ----------------------------------------------------
    def _collect_calls(self, module: ModuleInfo) -> None:
        mod_qual = f"{module.name}.{_MODULE_FUNC}"
        self.calls.setdefault(mod_qual, [])
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for call in _calls_in(stmt):
                callee = self._resolve_call(module, call, None, mod_qual)
                if callee is not None:
                    self.calls[mod_qual].append((callee, call))
        for qualname, fn in list(self.functions.items()):
            if fn.module is not module or fn.node is None:
                continue
            edges = self.calls.setdefault(qualname, [])
            for call in function_body_calls(fn.node):
                callee = self._resolve_call(module, call, fn, qualname)
                if callee is not None:
                    edges.append((callee, call))

    def _resolve_call(
        self,
        module: ModuleInfo,
        call: ast.Call,
        fn: Optional[FunctionInfo],
        caller_qual: str,
    ) -> Optional[str]:
        target = self.resolve_callable(module, call.func, fn, caller_qual)
        # Thread/Process creation: the *target=* callable is what runs.
        if target in ("threading.Thread", "multiprocessing.Process"):
            for kw in call.keywords:
                if kw.arg == "target":
                    return self.resolve_callable(
                        module, kw.value, fn, caller_qual
                    )
        return target if target in self.functions else (
            self._init_of(target) if target else None
        )

    def _init_of(self, target: Optional[str]) -> Optional[str]:
        if target is not None and target in self.classes:
            init = self.resolve_method(target, "__init__")
            return init
        return None

    def resolve_callable(
        self,
        module: ModuleInfo,
        func: ast.AST,
        fn: Optional[FunctionInfo],
        caller_qual: str,
    ) -> Optional[str]:
        """Resolve a callable expression to a qualname (or dotted name)."""
        if isinstance(func, ast.Name):
            # Nested function defined in an enclosing function chain?
            # (Class scopes are skipped: a bare name inside a method
            # resolves to module scope, not to sibling methods.)
            prefix = caller_qual
            while prefix:
                if prefix not in self.classes:
                    candidate = f"{prefix}.{func.id}"
                    if candidate in self.functions:
                        return candidate
                prefix = prefix.rsplit(".", 1)[0] if "." in prefix else ""
            return self.resolve_symbol(module, func.id)
        if isinstance(func, ast.Attribute):
            recv = func.value
            # self.method() / cls.method()
            if (
                isinstance(recv, ast.Name)
                and recv.id in ("self", "cls")
                and fn is not None
                and fn.class_name is not None
            ):
                class_qual = f"{module.name}.{fn.class_name}"
                found = self.resolve_method(class_qual, func.attr)
                if found is not None:
                    return found
                # self.attr_typed_field.method() handled below via
                # attr_types; a plain unknown self-method falls through
                # to the unique-method heuristic.
            # module_alias.func() or Class.method()
            if isinstance(recv, ast.Name):
                target = self.resolve_symbol(module, f"{recv.id}.{func.attr}")
                if target is not None:
                    return target
                base = self.resolve_symbol(module, recv.id)
                if base is not None and base in self.classes:
                    return self.resolve_method(base, func.attr)
                if base is not None and base in self.by_name:
                    return None  # project module, but symbol unknown
            # self.field.method() with a typed field
            if (
                isinstance(recv, ast.Attribute)
                and isinstance(recv.value, ast.Name)
                and recv.value.id == "self"
                and fn is not None
                and fn.class_name is not None
            ):
                class_qual = f"{module.name}.{fn.class_name}"
                info = self.classes.get(class_qual)
                if info is not None:
                    field_cls = info.attr_types.get(recv.attr)
                    if field_cls is not None:
                        found = self.resolve_method(field_cls, func.attr)
                        if found is not None:
                            return found
            # local_var.method() where local_var = ProjectClass(...)
            if isinstance(recv, ast.Name) and fn is not None and fn.node is not None:
                local_cls = self._local_var_type(module, fn, recv.id)
                if local_cls is not None:
                    found = self.resolve_method(local_cls, func.attr)
                    if found is not None:
                        return found
            # Unique-method heuristic.
            owners = self.method_index.get(func.attr, [])
            if len(owners) == 1 and func.attr not in _GENERIC_NAMES:
                return self.classes[owners[0]].methods[func.attr]
        return None

    def _local_var_type(
        self, module: ModuleInfo, fn: FunctionInfo, var: str
    ) -> Optional[str]:
        assert fn.node is not None
        for stmt in ast.walk(fn.node):
            if not isinstance(stmt, ast.Assign) or not any(
                isinstance(t, ast.Name) and t.id == var for t in stmt.targets
            ):
                continue
            if isinstance(stmt.value, ast.Call):
                return self._resolve_class(module, stmt.value.func)
            # ``planner = self.planner`` propagates the field's type.
            if (
                isinstance(stmt.value, ast.Attribute)
                and isinstance(stmt.value.value, ast.Name)
                and stmt.value.value.id == "self"
                and fn.class_name is not None
            ):
                info = self.classes.get(f"{module.name}.{fn.class_name}")
                if info is not None:
                    return info.attr_types.get(stmt.value.attr)
        return None

    # -- reachability --------------------------------------------------
    def reachable_from(
        self, roots: Iterable[str]
    ) -> Dict[str, Optional[str]]:
        """BFS closure over the call graph.

        Returns ``{qualname: parent_qualname}`` for every reachable
        function (roots map to None), so callers can reconstruct one
        call chain per finding.
        """
        parents: Dict[str, Optional[str]] = {}
        queue: List[str] = []
        for root in roots:
            if root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for callee, _call in self.calls.get(current, ()):
                if callee not in parents:
                    parents[callee] = current
                    queue.append(callee)
        return parents

    def chain_to(
        self, parents: Dict[str, Optional[str]], qualname: str, limit: int = 4
    ) -> List[str]:
        """Call chain from a root to *qualname* (root first, truncated)."""
        chain: List[str] = []
        cursor: Optional[str] = qualname
        while cursor is not None:
            chain.append(cursor)
            cursor = parents.get(cursor)
        chain.reverse()
        if len(chain) > limit:
            chain = chain[:1] + ["..."] + chain[-(limit - 1):]
        return chain

    def pragmas_for(self, path: str) -> Optional[Pragmas]:
        module = self.modules.get(path)
        return module.pragmas if module is not None else None


def _assigned_names(stmt: ast.stmt) -> List[str]:
    names: List[str] = []
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names.extend(
                t.id for t in target.elts if isinstance(t, ast.Name)
            )
    return names


def _dotted_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted_name(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def function_body_calls(node: ast.AST) -> List[ast.Call]:
    """Call nodes in a function body, not descending into nested defs."""
    calls: List[ast.Call] = []
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(child, ast.Call):
                calls.append(child)
            stack.append(child)
    return calls


def function_body_walk(node: ast.AST) -> List[ast.AST]:
    """All nodes of a function body, not descending into nested defs."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            out.append(child)
            stack.append(child)
    return out


def _calls_in(stmt: ast.stmt) -> List[ast.Call]:
    return [n for n in ast.walk(stmt) if isinstance(n, ast.Call)]


# ----------------------------------------------------------------------
# Project-mode runner
# ----------------------------------------------------------------------
def run_project(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    respect_scope: bool = True,
    exclude: Sequence[str] = (),
) -> Tuple[List[Finding], ProjectIndex]:
    """Lint *paths* in whole-program mode.

    Builds the :class:`ProjectIndex` once, runs per-file rules on every
    module and project rules (:class:`srplint.engine.ProjectRule`) once
    over the index, filters everything through per-file pragmas, and
    returns the sorted findings plus the index (for pragma audits).
    """
    from srplint.engine import ProjectRule, default_rules

    if rules is None:
        rules = default_rules()
    project = ProjectIndex.build(paths, exclude=exclude)
    raw: List[Finding] = list(project.build_findings)
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    for module in project.modules.values():
        for rule in file_rules:
            if respect_scope and not rule.applies_to(module.path):
                continue
            raw.extend(rule.check(module.tree, module.path))
    for rule in project_rules:
        raw.extend(rule.check_project(project))
    findings: List[Finding] = []
    for finding in raw:
        pragmas = project.pragmas_for(finding.path)
        if (
            pragmas is not None
            and finding.code != TOOL_CODE
            and pragmas.allows(finding.line, finding.code)
        ):
            continue
        findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings, project
