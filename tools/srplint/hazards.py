"""Nondeterminism-hazard detection shared by SRP003 and SRP007.

One walk, one classification: every construct whose result can differ
across runs or machines — wall clocks, unseeded PRNGs, hash-randomised
set iteration, allocation-order ``id()``, process environment reads —
is reported as a ``(node, kind, message)`` triple.  SRP003 (per-file,
direct scope) consumes the :data:`SRP003_KINDS` subset with messages
unchanged from its original per-file implementation; SRP007 (the
call-graph closure) consumes the full set, including the two kinds
that only matter once helper modules are in view:

``id``
    ``id()`` values are CPython allocation addresses — stable within a
    process, different across runs.  Using one for *membership* is
    deterministic; letting one reach an ordering or a cache key is not,
    and the AST cannot tell the two apart, so closure code gets a
    finding and legitimate membership uses carry a reasoned pragma.

``env``
    ``os.environ`` / ``os.getenv`` make planning output a function of
    the shell that launched it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

WALL_CLOCK_ATTRS = frozenset({"time", "time_ns"})
TIME_MODULES = frozenset({"time", "_time"})
DATETIME_ATTRS = frozenset({"now", "today", "utcnow"})
SEEDED_RANDOM_OK = frozenset({"Random", "SystemRandom", "getstate", "setstate"})
NP_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence", "RandomState"})

#: hazard kinds the per-file SRP003 rule reports itself
SRP003_KINDS = frozenset({
    "wall_clock", "datetime", "random", "np_random", "secrets", "urandom",
    "uuid", "set_iter",
})

#: additional kinds only the whole-program SRP007 closure reports
SRP007_EXTRA_KINDS = frozenset({"id", "env"})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _attr_hazard(node: ast.Attribute) -> Iterator[Tuple[ast.AST, str, str]]:
    if isinstance(node.value, ast.Name):
        base, attr = node.value.id, node.attr
        if base in TIME_MODULES and attr in WALL_CLOCK_ATTRS:
            yield (node, "wall_clock",
                   f"wall-clock read {base}.{attr} in deterministic "
                   "planning code (perf_counter is fine for reporting)")
        elif base == "datetime" and attr in DATETIME_ATTRS:
            yield (node, "datetime",
                   f"wall-clock read datetime.{attr} in deterministic "
                   "planning code")
        elif base == "random" and attr not in SEEDED_RANDOM_OK:
            yield (node, "random",
                   f"unseeded random.{attr} in planning code; "
                   "instantiate random.Random(seed) instead")
        elif base == "secrets":
            yield (node, "secrets",
                   f"secrets.{attr} is nondeterministic by design")
        elif base == "os" and attr == "urandom":
            yield (node, "urandom", "os.urandom is nondeterministic")
        elif base == "os" and attr == "environ":
            yield (node, "env",
                   "os.environ read makes planning output depend on the "
                   "launching shell")
        elif base == "uuid" and attr in ("uuid1", "uuid4"):
            yield (node, "uuid",
                   f"uuid.{attr} is nondeterministic; derive ids from "
                   "query ids / seeds instead")
    elif isinstance(node.value, ast.Attribute):
        inner = node.value
        if (
            isinstance(inner.value, ast.Name)
            and inner.value.id in ("np", "numpy")
            and inner.attr == "random"
            and node.attr not in NP_RANDOM_OK
        ):
            yield (node, "np_random",
                   f"unseeded {inner.value.id}.random.{node.attr}; use "
                   "default_rng(seed)")


def scan_hazards(root: ast.AST) -> Iterator[Tuple[ast.AST, str, str]]:
    """Yield ``(node, kind, message)`` for every hazard under *root*.

    *root* may be a module or a single function node; the walk covers
    everything beneath it (callers that index nested functions
    separately should use :func:`scan_function_hazards`).
    """
    for node in ast.walk(root):
        yield from _node_hazards(node)


def _node_hazards(node: ast.AST) -> Iterator[Tuple[ast.AST, str, str]]:
    if isinstance(node, ast.Attribute):
        yield from _attr_hazard(node)
    elif isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            if node.func.id == "id" and len(node.args) == 1:
                yield (node, "id",
                       "id() is allocation order — deterministic only for "
                       "same-process membership tests, never for ordering "
                       "or keys that outlive the run")
            elif node.func.id == "getattr":
                pass
        if (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "os"
            and node.func.attr == "getenv"
        ):
            yield (node, "env",
                   "os.getenv read makes planning output depend on the "
                   "launching shell")
    elif isinstance(node, (ast.For, ast.comprehension)):
        if _is_set_expr(node.iter):
            yield (node.iter, "set_iter",
                   "iteration over a set has hash-randomised order; "
                   "sort it or use a list/tuple when the order can "
                   "reach route construction")


def scan_function_hazards(
    fn_node: ast.AST,
) -> Iterator[Tuple[ast.AST, str, str]]:
    """Hazards in one function body, not descending into nested defs."""
    from srplint.project import function_body_walk

    for node in function_body_walk(fn_node):
        yield from _node_hazards(node)
