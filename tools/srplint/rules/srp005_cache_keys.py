"""SRP005 — plan-cache keys must include a version component.

Invariant (PR 1/PR 3): the plan cache is *never invalidated* — it is
kept exact by construction, because every key embeds the content
version(s) of the store(s) the cached plan read.  A key tuple that
drops the version component serves stale routes the moment a commit,
decommit, or prune lands.

Checked in ``plan_cache.py`` / ``inter_strip.py``:

* tuples tagged ``WINDOW_TAG`` or ``CROSSING_TAG`` must contain an
  element whose name mentions ``version`` (e.g. ``store.version``,
  ``version_of(...)``, ``self.crossings.version``);
* ``SHIFT_TAG`` keys deliberately omit the version — there the version
  lives in the cached *value*, so when a ``SHIFT_TAG`` key is passed to
  ``cache.put(key, value)`` the **value** expression must mention a
  version instead;
* any untagged tuple of five or more elements bound to a ``*key``-named
  variable must mention a version.

Suppress deliberate exceptions with ``# srplint: allow(SRP005)
<reason>``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from srplint.engine import Finding, Rule

VERSIONED_TAGS = frozenset({"WINDOW_TAG", "CROSSING_TAG"})
VALUE_VERSIONED_TAGS = frozenset({"SHIFT_TAG"})


def _mentions_version(node: ast.AST) -> bool:
    """Any Name/Attribute/keyword in *node*'s subtree mentioning 'version'."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "version" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "version" in sub.attr.lower():
            return True
        if isinstance(sub, ast.keyword) and sub.arg and "version" in sub.arg.lower():
            return True
    return False


def _tag_of(tup: ast.Tuple) -> Optional[str]:
    if tup.elts and isinstance(tup.elts[0], ast.Name):
        return tup.elts[0].id
    return None


class _FunctionScanner(ast.NodeVisitor):
    """Scan one function: local tuple bindings, put() calls, key tuples."""

    def __init__(self, rule: "SRP005CacheKeyVersion", path: str,
                 findings: List[Finding]):
        self.rule = rule
        self.path = path
        self.findings = findings
        self._tuples: Dict[str, ast.Tuple] = {}

    def _resolve(self, node: ast.AST) -> Optional[ast.Tuple]:
        if isinstance(node, ast.Tuple):
            return node
        if isinstance(node, ast.Name):
            return self._tuples.get(node.id)
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Tuple):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._tuples[target.id] = node.value
                    self._check_key_binding(target.id, node.value)
        self.generic_visit(node)

    def _check_key_binding(self, name: str, tup: ast.Tuple) -> None:
        tag = _tag_of(tup)
        if tag in VERSIONED_TAGS or tag in VALUE_VERSIONED_TAGS:
            return  # tagged tuples are checked by visit_Tuple / put()
        if not name.lower().endswith("key"):
            return
        if len(tup.elts) >= 5 and not _mentions_version(tup):
            self.findings.append(self.rule.finding(
                self.path, tup,
                f"cache key '{name}' = {len(tup.elts)}-tuple without a "
                "version component; include store.version / version_of(...) "
                "or the cached result can go stale",
            ))

    def visit_Tuple(self, node: ast.Tuple) -> None:
        tag = _tag_of(node)
        if tag in VERSIONED_TAGS and not _mentions_version(node):
            self.findings.append(self.rule.finding(
                self.path, node,
                f"{tag}-tagged cache key omits the store/ledger version "
                "component",
            ))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scopes get their own scanner (and binding table)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "put"
            and len(node.args) >= 2
        ):
            key_tuple = self._resolve(node.args[0])
            if key_tuple is not None and _tag_of(key_tuple) in VALUE_VERSIONED_TAGS:
                value = node.args[1]
                resolved_value = self._resolve(value) or value
                if not _mentions_version(resolved_value):
                    self.findings.append(self.rule.finding(
                        self.path, node,
                        "SHIFT_TAG cache entry stores a value without a "
                        "version stamp; shift certificates must embed "
                        "store.version in the cached value for "
                        "re-validation",
                    ))
        self.generic_visit(node)


class SRP005CacheKeyVersion(Rule):
    """Flag plan-cache key/value constructions that drop the version."""

    code = "SRP005"
    name = "cache-key-version"
    scope = ("repro/core/plan_cache.py", "repro/core/inter_strip.py")

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        findings: List[Finding] = []
        scopes: List[ast.AST] = [tree]
        scopes.extend(
            node for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            scanner = _FunctionScanner(self, path, findings)
            for stmt in scope.body:  # type: ignore[attr-defined]
                scanner.visit(stmt)
        return findings
