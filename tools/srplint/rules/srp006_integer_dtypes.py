"""SRP006 — geometry arrays must stay integer-dtyped.

Invariant (PR 6): the columnar store and the strip geometry batch their
hot loops over flat arrays, and every quantity in them — times,
positions, slopes, intercepts — is an exact integer.  A float-dtyped
array silently re-introduces the rounding hazards SRP002 bans from
scalar code: ``np.int64`` comparisons become approximate the moment one
operand is promoted to ``float64``, and a 2^53-second horizon quietly
loses precision.  So, inside the integer core (``repro/core/``,
``repro/geometry/``):

* numpy *allocation* factories (``np.empty/zeros/ones/full/asarray/
  array/frombuffer/fromiter``) must pass an explicit ``dtype=`` that is
  an integer (or bool) dtype — the numpy default is ``float64``;
* ``np.arange``/``np.linspace`` must not pass a float dtype
  (``arange`` over ints already yields ints, so its dtype may be
  omitted; ``linspace`` is float by construction and always flagged);
* ``array.array(typecode, ...)`` must use an integer typecode
  (``'f'``/``'d'``/``'u'`` are flagged).

Suppress deliberate exceptions with ``# srplint: allow(SRP006)
<reason>`` — e.g. a reporting-only buffer of seconds.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from srplint.engine import Finding, Rule

#: numpy factories that allocate with a float64 default dtype
ALLOC_FACTORIES = frozenset({
    "empty", "zeros", "ones", "full", "asarray", "array", "frombuffer",
    "fromiter",
})

#: numpy dtype names accepted as exact (integer or bool)
INT_DTYPES = frozenset({
    "int8", "int16", "int32", "int64", "uint8", "uint16", "uint32",
    "uint64", "intp", "uintp", "int_", "intc", "bool_", "bool", "int",
})

#: ``array.array`` typecodes backed by C integers
INT_TYPECODES = frozenset("bBhHiIlLqQ")

#: names a numpy module is commonly imported as
NUMPY_ALIASES = frozenset({"np", "numpy"})


def _dtype_kw(call: ast.Call) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == "dtype":
            return kw.value
    return None


def _dtype_is_integer(node: ast.expr) -> Optional[bool]:
    """True/False when the dtype expression is classifiable, else None."""
    name = None
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        # string dtype codes: 'i8', '<i4', 'u2', '?', 'f8', ...
        code = node.value.lstrip("<>=|")
        return bool(code) and code[0] in "iub?"
    if name is None:
        return None  # computed dtype: give it the benefit of the doubt
    if name in INT_DTYPES:
        return True
    return False


class SRP006IntegerDtypes(Rule):
    """Flag float-dtyped array allocations in the exact-integer core."""

    code = "SRP006"
    name = "integer-dtype-arrays"
    scope = ("repro/core/", "repro/geometry/")

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in NUMPY_ALIASES
            ):
                self._check_numpy(node, func.attr, path, findings)
            elif isinstance(func, ast.Name) and func.id == "array":
                self._check_stdlib_array(node, path, findings)
        return findings

    def _check_numpy(self, call: ast.Call, fname: str, path: str,
                     findings: List[Finding]) -> None:
        if fname == "linspace":
            findings.append(self.finding(
                path, call,
                "np.linspace produces float samples; the integer core must "
                "build ranges with np.arange over ints",
            ))
            return
        dtype = _dtype_kw(call)
        if fname == "arange":
            if dtype is not None and _dtype_is_integer(dtype) is False:
                findings.append(self.finding(
                    path, call,
                    "np.arange with a float dtype in the exact-integer core",
                ))
            return
        if fname not in ALLOC_FACTORIES:
            return
        if dtype is None:
            findings.append(self.finding(
                path, call,
                f"np.{fname} without an explicit integer dtype= — numpy "
                "defaults to float64, which breaks the exact-integer "
                "contract of the geometry arrays",
            ))
        elif _dtype_is_integer(dtype) is False:
            findings.append(self.finding(
                path, call,
                f"np.{fname} with a non-integer dtype in the exact-integer "
                "core",
            ))

    def _check_stdlib_array(self, call: ast.Call, path: str,
                            findings: List[Finding]) -> None:
        if not call.args:
            return
        first = call.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            return  # not an array.array typecode call (e.g. np alias misuse)
        if len(first.value) == 1 and first.value not in INT_TYPECODES:
            findings.append(self.finding(
                path, call,
                f"array.array typecode {first.value!r} is not an integer "
                "typecode; geometry columns must stay exact",
            ))
