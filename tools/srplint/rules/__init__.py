"""Built-in srplint rules.

Adding a rule: create ``srpNNN_<slug>.py`` exporting a
:class:`srplint.engine.Rule` subclass (or
:class:`srplint.engine.ProjectRule` for whole-program analyses), import
it here, and append it to ``ALL_RULES`` — the CLI, pragma machinery,
and fixture-test harness pick it up automatically.  See
``docs/static-analysis.md``.
"""

from srplint.rules.srp001_version_bump import SRP001VersionBump
from srplint.rules.srp002_int_arithmetic import SRP002IntArithmetic
from srplint.rules.srp003_determinism import SRP003Determinism
from srplint.rules.srp004_diagnostics import SRP004Diagnostics
from srplint.rules.srp005_cache_keys import SRP005CacheKeyVersion
from srplint.rules.srp006_integer_dtypes import SRP006IntegerDtypes
from srplint.rules.srp007_transitive_determinism import (
    SRP007TransitiveDeterminism,
)
from srplint.rules.srp008_pairing import SRP008AcquireReleasePairing
from srplint.rules.srp009_thread_shared import SRP009ThreadSharedState
from srplint.rules.srp010_protocol import SRP010ProtocolExhaustiveness

ALL_RULES = [
    SRP001VersionBump,
    SRP002IntArithmetic,
    SRP003Determinism,
    SRP004Diagnostics,
    SRP005CacheKeyVersion,
    SRP006IntegerDtypes,
    SRP007TransitiveDeterminism,
    SRP008AcquireReleasePairing,
    SRP009ThreadSharedState,
    SRP010ProtocolExhaustiveness,
]

__all__ = [
    "ALL_RULES",
    "SRP001VersionBump",
    "SRP002IntArithmetic",
    "SRP003Determinism",
    "SRP004Diagnostics",
    "SRP005CacheKeyVersion",
    "SRP006IntegerDtypes",
    "SRP007TransitiveDeterminism",
    "SRP008AcquireReleasePairing",
    "SRP009ThreadSharedState",
    "SRP010ProtocolExhaustiveness",
]
