"""Built-in srplint rules.

Adding a rule: create ``srpNNN_<slug>.py`` exporting a
:class:`srplint.engine.Rule` subclass, import it here, and append it to
``ALL_RULES`` — the CLI, pragma machinery, and fixture-test harness pick
it up automatically.  See ``docs/static-analysis.md``.
"""

from srplint.rules.srp001_version_bump import SRP001VersionBump
from srplint.rules.srp002_int_arithmetic import SRP002IntArithmetic
from srplint.rules.srp003_determinism import SRP003Determinism
from srplint.rules.srp004_diagnostics import SRP004Diagnostics
from srplint.rules.srp005_cache_keys import SRP005CacheKeyVersion
from srplint.rules.srp006_integer_dtypes import SRP006IntegerDtypes

ALL_RULES = [
    SRP001VersionBump,
    SRP002IntArithmetic,
    SRP003Determinism,
    SRP004Diagnostics,
    SRP005CacheKeyVersion,
    SRP006IntegerDtypes,
]

__all__ = [
    "ALL_RULES",
    "SRP001VersionBump",
    "SRP002IntArithmetic",
    "SRP003Determinism",
    "SRP004Diagnostics",
    "SRP005CacheKeyVersion",
    "SRP006IntegerDtypes",
]
