"""SRP008 — acquire/release pairing for 2PC claims and recovery holds.

The sharded planning service runs a two-phase commit over boundary
strips: ``_op_prepare`` takes ``claim_boundary_hold`` /
``claim_boundary_crossing`` on the shard planner, and every one of
those claims must end in exactly one of ``bind_boundary_claims``
(commit) or ``abort_commit`` (rollback).  Joint cluster recovery has
the same shape with ``commit_recovery_hold`` / ``release_recovery_hold``.
A claim that survives an *exception* edge is the worst kind of bug:
the happy-path tests never see it, and the leaked hold deadlocks the
next query that touches the strip.

This rule proves pairing **path-sensitively** on the per-function CFG
(:mod:`srplint.cfg`): a claim acquired at some statement must be
released — by one of its paired release calls — on *every* path from
that statement to the function's normal exit and to its exceptional
exit.  Loops are analysed under the loop-once abstraction (``back`` and
``skip`` edges dropped), so an acquire-loop paired with a release-loop
later in the same function checks clean.

Deliberate imbalances have two escape hatches:

* a 2PC *prepare* intentionally returns with claims held (the
  coordinator commits or aborts them later) — annotate the ``return``
  with ``# srplint: holds(claim_boundary_hold, ...) <reason>``; the
  named resources are excused **on that exit only** (exception edges
  stay checked);
* anything else takes a standard ``# srplint: allow(SRP008) <reason>``
  on the acquire line.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from srplint.cfg import CFG, CFGNode, build_cfg
from srplint.engine import Finding, ProjectRule

#: acquire call name -> call names that release it
PAIRS: Dict[str, frozenset] = {
    "claim_boundary_hold": frozenset({"abort_commit", "bind_boundary_claims"}),
    "claim_boundary_crossing": frozenset(
        {"abort_commit", "bind_boundary_claims"}
    ),
    "commit_recovery_hold": frozenset({"release_recovery_hold"}),
}

_RELEASE_NAMES = frozenset(
    name for releases in PAIRS.values() for name in releases
)


class _Site:
    """One acquire call site inside one function."""

    __slots__ = ("name", "node")

    def __init__(self, name: str, node: ast.Call) -> None:
        self.name = name
        self.node = node


class SRP008AcquireReleasePairing(ProjectRule):
    """Prove every 2PC claim/recovery hold is released on every exit."""

    code = "SRP008"
    name = "acquire-release-pairing"
    scope = ("repro/",)

    def check_project(self, project: object) -> List[Finding]:
        findings: List[Finding] = []
        for qualname in sorted(project.functions):  # type: ignore[attr-defined]
            fn = project.functions[qualname]  # type: ignore[attr-defined]
            if fn.node is None or not self.applies_to(fn.module.path):
                continue
            findings.extend(self._check_function(fn))
        return findings

    def _check_function(self, fn: object) -> List[Finding]:
        cfg = build_cfg(fn.node)  # type: ignore[attr-defined]
        node_events = {
            node.idx: _events(node) for node in cfg.nodes
        }
        if not any(acqs for acqs, _rels in node_events.values()):
            return []
        held = _propagate(cfg, node_events)
        pragmas = fn.module.pragmas  # type: ignore[attr-defined]
        findings: List[Finding] = []
        reported: Set[int] = set()
        for site, exit_kind, at_node in _leaks(cfg, held, node_events):
            if exit_kind == "return" and at_node is not None:
                excused = pragmas.holds.get(at_node.line, ())
                if site.name in excused:
                    pragmas.mark_holds_used(at_node.line)
                    continue
            if id(site) in reported:
                continue
            reported.add(id(site))
            where = (
                f"still held at return (line {at_node.line})"
                if exit_kind == "return" and at_node is not None
                else "leaks when an exception escapes"
                + (f" (raised near line {at_node.line})" if at_node else "")
            )
            releases = " or ".join(sorted(PAIRS[site.name]))
            findings.append(
                self.finding(
                    fn.module.path,  # type: ignore[attr-defined]
                    site.node,
                    f"{site.name} acquired here {where} in "
                    f"{fn.qualname.rsplit('.', 1)[-1]}(); every path must "  # type: ignore[attr-defined]
                    f"reach {releases} — release on the error path, or "
                    "annotate an intentional 2PC hand-off with "
                    f"'# srplint: holds({site.name}) <reason>' on the return",
                )
            )
        return findings


def _events(node: CFGNode) -> Tuple[List[_Site], Set[str]]:
    """(acquire sites, release names) appearing in *node*'s own code."""
    acquires: List[_Site] = []
    releases: Set[str] = set()
    for part in _own_exprs(node):
        for sub in ast.walk(part):
            if not isinstance(sub, ast.Call):
                continue
            name = _call_name(sub)
            if name in PAIRS:
                acquires.append(_Site(name, sub))
            elif name in _RELEASE_NAMES:
                releases.add(name)
    return acquires, releases


def _own_exprs(node: CFGNode) -> List[ast.AST]:
    """The AST parts evaluated *at* this CFG node (headers, not bodies)."""
    stmt = node.stmt
    if stmt is None or node.kind == "join":
        return []
    if isinstance(stmt, ast.If) or isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _propagate(
    cfg: CFG, node_events: Dict[int, Tuple[List[_Site], Set[str]]]
) -> Dict[Tuple[int, int, str], Set[_Site]]:
    """Forward may-analysis: held acquire sites on every CFG edge.

    ``back`` and ``skip`` edges are ignored (loop-once abstraction),
    leaving an acyclic graph.  A node's releases clear matching sites
    first; its acquires are then added to **normal** out-edges only —
    if the acquire call itself raises, the claim was never taken, so
    the exception edge of the acquiring statement carries the
    pre-acquire state.
    """
    edge_state: Dict[Tuple[int, int, str], Set[_Site]] = {}
    in_state: Dict[int, Set[_Site]] = {cfg.entry: set()}
    worklist: List[int] = [cfg.entry]
    while worklist:
        idx = worklist.pop(0)
        state = in_state.get(idx, set())
        acquires, releases = node_events[idx]
        after_release = {
            site for site in state
            if not (releases & PAIRS[site.name])
        }
        with_acquire = after_release | set(acquires)
        for dst, kind in cfg.successors(idx, ignore=("back", "skip")):
            out = with_acquire if kind == "normal" else after_release
            key = (idx, dst, kind)
            if edge_state.get(key) == out:
                continue
            edge_state[key] = set(out)
            merged = in_state.get(dst, set()) | out
            if merged != in_state.get(dst):
                in_state[dst] = merged
                if dst not in worklist:
                    worklist.append(dst)
    return edge_state


def _leaks(
    cfg: CFG,
    edge_state: Dict[Tuple[int, int, str], Set[_Site]],
    node_events: Dict[int, Tuple[List[_Site], Set[str]]],
) -> List[Tuple[_Site, str, Optional[CFGNode]]]:
    """Yield (site, exit kind, offending node) for every held-at-exit."""
    out: List[Tuple[_Site, str, Optional[CFGNode]]] = []
    for (src, dst, kind), sites in sorted(
        edge_state.items(), key=lambda item: item[0][:2]
    ):
        if not sites:
            continue
        node = cfg.node(src)
        if dst == cfg.exit:
            for site in sorted(sites, key=lambda s: s.node.lineno):
                out.append((site, "return", node))
        elif dst == cfg.exc_exit and kind == "exc":
            for site in sorted(sites, key=lambda s: s.node.lineno):
                out.append((site, "exception", node))
    return out
