"""SRP009 — thread-shared-state discipline.

The service frontend is the one place the codebase runs real threads:
``server.py`` spawns a listener, per-shard dispatcher loops and a
telemetry logger over one shared ``ServiceServer``; the load generator
drives consumer/reader closures over shared locals.  Every one of those
threads shares mutable state with the spawning code, and the repo's
rule is simple: **a field mutated both inside a thread body and outside
it is touched only under a lock** (a ``with self._state:`` /
``with lock:`` block around the mutation).

This rule finds the thread targets — ``threading.Thread(target=...)``
pointed at a ``self.method`` or at a nested closure function — and
checks exactly that discipline, per attribute:

* *class targets*: attributes of ``self`` written both by the thread
  body (including same-class methods it calls) and by other methods
  must have every write inside a ``with self.<lock>:`` block, where the
  lock is any attribute assigned ``threading.Lock/RLock/Condition/
  Semaphore/BoundedSemaphore``.  ``__init__`` and the spawning method
  are pre-``start()`` hand-off and exempt;
* *closure targets*: closure variables (and their attributes /
  elements) written both by the nested thread body and by the
  enclosing function **after the first ``Thread`` creation** get the
  same treatment against locks held in enclosing locals.

Mutations are assignments, augmented assignments, subscript stores and
known in-place mutator calls (``append``/``update``/...).  Read-write
races are out of scope — this is a write-write checker.

Deliberately lock-free shared state (immutable hand-off, monotonic
flags read racily on purpose) is declared once per file with
``# srplint: shared(name, ...) <reason>`` — the names are attribute
names for class targets and ``var`` / ``var.attr`` keys for closures.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from srplint.engine import Finding, ProjectRule

_LOCK_CTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)
_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "remove", "discard", "pop",
    "popleft", "appendleft", "clear", "update", "setdefault", "sort",
    "reverse",
})

#: (key, AST node, under_lock)
_Mutation = Tuple[str, ast.AST, bool]


class SRP009ThreadSharedState(ProjectRule):
    """Flag unlocked writes to state shared between a thread and its spawner."""

    code = "SRP009"
    name = "thread-shared-state"
    scope = ("repro/",)

    def check_project(self, project: object) -> List[Finding]:
        findings: List[Finding] = []
        for path in sorted(project.modules):  # type: ignore[attr-defined]
            if not self.applies_to(path):
                continue
            module = project.modules[path]  # type: ignore[attr-defined]
            findings.extend(_check_module(self, project, module))
        return findings


# ----------------------------------------------------------------------
# Thread-target discovery
# ----------------------------------------------------------------------
def _thread_targets(call: ast.Call) -> Optional[ast.AST]:
    """The ``target=`` expression when *call* constructs a Thread."""
    name: Optional[str] = None
    if isinstance(call.func, ast.Name):
        name = call.func.id
    elif isinstance(call.func, ast.Attribute):
        name = call.func.attr
    if name != "Thread":
        return None
    for kw in call.keywords:
        if kw.arg == "target":
            return kw.value
    return None


def _check_module(rule, project, module) -> List[Finding]:
    #: class qualname -> {method name spawned as a thread body}
    class_spawns: Dict[str, Set[str]] = {}
    #: class qualname -> {method name that creates the threads}
    class_spawners: Dict[str, Set[str]] = {}
    #: enclosing fn qualname -> [(nested fn qualname, creation line)]
    closure_spawns: Dict[str, List[Tuple[str, int]]] = {}

    for qualname, fn in project.functions.items():
        if fn.module is not module or fn.node is None:
            continue
        from srplint.project import function_body_calls

        for call in function_body_calls(fn.node):
            target = _thread_targets(call)
            if target is None:
                continue
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and fn.class_name is not None
            ):
                class_qual = f"{module.name}.{fn.class_name}"
                info = project.classes.get(class_qual)
                if info is not None and target.attr in info.methods:
                    class_spawns.setdefault(class_qual, set()).add(target.attr)
                    class_spawners.setdefault(class_qual, set()).add(fn.name)
            elif isinstance(target, ast.Name):
                nested = f"{qualname}.{target.id}"
                if nested in project.functions:
                    closure_spawns.setdefault(qualname, []).append(
                        (nested, call.lineno)
                    )

    findings: List[Finding] = []
    for class_qual in sorted(class_spawns):
        findings.extend(
            _check_class(
                rule, project, module, class_qual,
                class_spawns[class_qual], class_spawners[class_qual],
            )
        )
    for encl_qual in sorted(closure_spawns):
        findings.extend(
            _check_closure(
                rule, project, module, encl_qual, closure_spawns[encl_qual]
            )
        )
    return findings


# ----------------------------------------------------------------------
# Class-based thread bodies
# ----------------------------------------------------------------------
def _check_class(
    rule, project, module, class_qual: str,
    body_methods: Set[str], spawner_methods: Set[str],
) -> List[Finding]:
    info = project.classes[class_qual]
    lock_attrs = _class_lock_attrs(project, info)

    def is_lock(expr: ast.AST) -> bool:
        return (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in lock_attrs
        )

    # The thread body is the target method plus every same-class method
    # it (transitively) calls.
    thread_methods: Set[str] = set(body_methods)
    roots = [info.methods[m] for m in body_methods]
    for reached in project.reachable_from(roots):
        if reached.startswith(class_qual + "."):
            thread_methods.add(reached[len(class_qual) + 1:].split(".")[0])

    body_muts: Dict[str, List[_Mutation]] = {}
    outside_muts: Dict[str, List[_Mutation]] = {}
    exempt = {"__init__"} | spawner_methods
    for method_name, method_qual in info.methods.items():
        fn = project.functions[method_qual]
        if fn.node is None:
            continue
        muts = _collect_mutations(fn.node, is_lock, _self_key)
        if method_name in thread_methods:
            bucket = body_muts
        elif method_name in exempt:
            continue
        else:
            bucket = outside_muts
        for key, node, locked in muts:
            bucket.setdefault(key, []).append((key, node, locked))

    lock_hint = (
        f"self.{sorted(lock_attrs)[0]}" if lock_attrs else "a threading.Lock"
    )
    return _report_races(
        rule, module, body_muts, outside_muts,
        context=f"{info.node.name} thread body "
                f"({', '.join(sorted(body_methods))})",
        lock_hint=lock_hint,
    )


def _class_lock_attrs(project, info) -> Set[str]:
    locks: Set[str] = set()
    for method_qual in info.methods.values():
        fn = project.functions[method_qual]
        if fn.node is None:
            continue
        for stmt in ast.walk(fn.node):
            if not isinstance(stmt, ast.Assign):
                continue
            if not _is_lock_ctor(stmt.value):
                continue
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    locks.add(target.attr)
    return locks


def _self_key(expr: ast.AST, rebinding: bool = True) -> Optional[str]:
    """Shared-state key for a write through ``self`` (first attribute)."""
    base = expr
    while isinstance(base, ast.Subscript):
        base = base.value
    if (
        isinstance(base, ast.Attribute)
        and isinstance(base.value, ast.Name)
        and base.value.id == "self"
    ):
        return base.attr
    # self.a.b = ... mutates the object held in self.a
    while isinstance(base, ast.Attribute):
        inner = base.value
        if isinstance(inner, ast.Attribute) and isinstance(
            inner.value, ast.Name
        ) and inner.value.id == "self":
            return inner.attr
        base = inner
    return None


# ----------------------------------------------------------------------
# Closure-based thread bodies
# ----------------------------------------------------------------------
def _check_closure(
    rule, project, module, encl_qual: str,
    spawns: List[Tuple[str, int]],
) -> List[Finding]:
    encl = project.functions[encl_qual]
    if encl.node is None:
        return []
    closure_vars = _bound_names(encl.node)
    lock_vars = {
        name for name in closure_vars
        if _assigned_lock(encl.node, name)
    }
    start_line = min(line for _nested, line in spawns)

    def is_lock(expr: ast.AST) -> bool:
        return isinstance(expr, ast.Name) and expr.id in lock_vars

    body_muts: Dict[str, List[_Mutation]] = {}
    for nested_qual, _line in spawns:
        nested = project.functions[nested_qual]
        if nested.node is None:
            continue
        rebindable = _nonlocal_names(nested.node)
        key_of = _closure_key(closure_vars, rebindable)
        for key, node, locked in _collect_mutations(
            nested.node, is_lock, key_of
        ):
            body_muts.setdefault(key, []).append((key, node, locked))

    # Writes in the enclosing body before the first Thread creation are
    # pre-start initialisation; only post-spawn writes can race.
    outside_muts: Dict[str, List[_Mutation]] = {}
    key_of_outside = _closure_key(closure_vars, closure_vars)
    for key, node, locked in _collect_mutations(
        encl.node, is_lock, key_of_outside
    ):
        if getattr(node, "lineno", 0) <= start_line:
            continue
        outside_muts.setdefault(key, []).append((key, node, locked))

    lock_hint = (
        sorted(lock_vars)[0] if lock_vars else "a threading.Lock local"
    )
    targets = ", ".join(q.rsplit(".", 1)[-1] for q, _l in spawns)
    return _report_races(
        rule, module, body_muts, outside_muts,
        context=f"{encl.name}() thread body ({targets})",
        lock_hint=lock_hint,
    )


def _closure_key(
    tracked: Set[str], bare_ok: Set[str]
) -> Callable[[ast.AST, bool], Optional[str]]:
    def key_of(expr: ast.AST, rebinding: bool = True) -> Optional[str]:
        if isinstance(expr, ast.Name):
            if rebinding:
                # bare rebinding: only a nonlocal (or the enclosing
                # function's own local) is a shared write
                return expr.id if expr.id in bare_ok else None
            # mutator-call receiver (results.append(...)): any tracked
            # closure variable counts
            return expr.id if expr.id in tracked else None
        base = expr
        while isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Attribute) and isinstance(
            base.value, ast.Name
        ):
            if base.value.id in tracked:
                return f"{base.value.id}.{base.attr}"
            return None
        if isinstance(base, ast.Name):
            return base.id if base.id in tracked else None
        return None

    return key_of


def _bound_names(fn_node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    args = fn_node.args  # type: ignore[attr-defined]
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    from srplint.project import function_body_walk

    for node in function_body_walk(fn_node):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, ast.withitem):
            if isinstance(node.optional_vars, ast.Name):
                names.add(node.optional_vars.id)
    return names


def _nonlocal_names(fn_node: ast.AST) -> Set[str]:
    from srplint.project import function_body_walk

    out: Set[str] = set()
    for node in function_body_walk(fn_node):
        if isinstance(node, ast.Nonlocal):
            out.update(node.names)
    return out


def _assigned_lock(fn_node: ast.AST, name: str) -> bool:
    from srplint.project import function_body_walk

    for node in function_body_walk(fn_node):
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == name
                for t in node.targets
            )
            and _is_lock_ctor(node.value)
        ):
            return True
    return False


def _is_lock_ctor(expr: ast.AST) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    name = (
        func.id if isinstance(func, ast.Name)
        else func.attr if isinstance(func, ast.Attribute)
        else None
    )
    return name in _LOCK_CTORS


# ----------------------------------------------------------------------
# Mutation collection (lock-context aware)
# ----------------------------------------------------------------------
def _collect_mutations(
    fn_node: ast.AST,
    is_lock: Callable[[ast.AST], bool],
    key_of: Callable[[ast.AST, bool], Optional[str]],
) -> List[_Mutation]:
    out: List[_Mutation] = []

    def write_exprs(stmt: ast.stmt) -> List[Tuple[ast.AST, bool]]:
        if isinstance(stmt, ast.Assign):
            return [(t, True) for t in stmt.targets]
        if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            return [(stmt.target, True)]
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr in _MUTATORS
        ):
            return [(stmt.value.func.value, False)]
        return []

    def visit(stmts: Sequence[ast.stmt], locked: bool) -> None:
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = locked or any(
                    is_lock(item.context_expr) for item in stmt.items
                )
                visit(stmt.body, inner)
                continue
            for expr, rebinding in write_exprs(stmt):
                key = key_of(expr, rebinding)
                if key is not None:
                    out.append((key, expr, locked))
            for attr in ("body", "orelse", "finalbody"):
                visit(getattr(stmt, attr, []), locked)
            for handler in getattr(stmt, "handlers", []):
                visit(handler.body, locked)

    visit(list(fn_node.body), False)  # type: ignore[attr-defined]
    return out


# ----------------------------------------------------------------------
# Race reporting
# ----------------------------------------------------------------------
def _report_races(
    rule, module,
    body_muts: Dict[str, List[_Mutation]],
    outside_muts: Dict[str, List[_Mutation]],
    context: str,
    lock_hint: str,
) -> List[Finding]:
    findings: List[Finding] = []
    for key in sorted(set(body_muts) & set(outside_muts)):
        sites = body_muts[key] + outside_muts[key]
        unlocked = [s for s in sites if not s[2]]
        if not unlocked:
            continue
        base = key.split(".")[0]
        if key in module.pragmas.shared or base in module.pragmas.shared:
            module.pragmas.mark_shared_used(
                key if key in module.pragmas.shared else base
            )
            continue
        _key, node, _locked = min(
            unlocked, key=lambda s: getattr(s[1], "lineno", 0)
        )
        findings.append(
            rule.finding(
                module.path,
                node,
                f"'{key}' is written both inside and outside the {context} "
                f"but this write is not under {lock_hint}; hold the lock at "
                "every write, or declare the hand-off safe with "
                f"'# srplint: shared({key}) <reason>'",
            )
        )
    return findings
