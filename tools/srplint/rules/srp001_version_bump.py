"""SRP001 — segment-store mutations must bump the content version.

Invariant (PR 1/PR 2): every mutation of a segment container inside a
``SegmentStore`` subclass (or any class that stamps itself with
``store_base.next_version()``, e.g. ``CrossingLedger``) must be followed
by a version bump — ``self._bump_version()``, ``self._bump_insert(...)``
or ``self.version = next_version()`` — before the method returns.  The
plan cache keys on those versions; a mutation that escapes without a
bump silently serves stale cached routes.

The rule runs a small may-dirty dataflow over each method body:

* a *mutation* marks the state dirty — a mutating method call
  (``.insert/.append/.add/.pop/...``) on a container reached from
  ``self``, a subscript store/delete on one, or reassignment of a
  container attribute (container attributes are inferred from
  ``__init__``: anything initialised to a list/dict/set literal,
  comprehension, or ``list()/dict()/set()/deque()/defaultdict()`` call);
* a *bump* clears it;
* reaching ``return`` — or falling off the end of the method — while
  dirty is a finding.  ``raise`` exits are exempt: failed operations
  are expected to leave the store untouched (``remove()`` raises
  ``KeyError`` only when nothing was removed).

Locals aliased from ``self`` containers are tracked (``segs =
self._by_start[k]``; ``bucket = d.get(key)``), including through
``if/else``, loops with ``break``/``continue``, and ``with`` blocks —
joins are may-dirty, so a mutation on *any* path must be matched by a
bump on *every* path that can observe it.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Set

from srplint.engine import Finding, Rule

#: Method names whose call on a tracked container counts as a mutation.
MUTATING_METHODS = frozenset({
    "insert", "append", "appendleft", "add", "remove", "discard", "clear",
    "pop", "popitem", "popleft", "setdefault", "update", "extend",
    "extendleft", "sort", "reverse",
})

#: Free functions that mutate their first argument in place.
MUTATING_FUNCTIONS = frozenset({
    "heappush", "heappop", "heapreplace", "heappushpop",
    "insort", "insort_left", "insort_right",
})

#: ``.get``-style accessors whose result aliases the container.
ALIASING_METHODS = frozenset({"get", "setdefault"})

#: Constructor calls in ``__init__`` that mark an attribute as a container.
#: The numpy factory names cover array-backed (columnar) stores whose
#: geometry columns live in flat buffers rather than Python containers.
CONTAINER_FACTORIES = frozenset({
    "list", "dict", "set", "frozenset", "tuple", "deque", "defaultdict",
    "OrderedDict", "Counter", "array", "bytearray",
    "empty", "zeros", "ones", "full", "arange", "frombuffer", "fromiter",
    "asarray",
})

#: Methods never analysed: construction and the bump primitives themselves.
SKIPPED_METHODS = frozenset({"__init__", "_bump_version", "_bump_insert"})


class _State:
    """Dataflow fact: may the store be dirty, and which locals alias it."""

    __slots__ = ("dirty", "aliases")

    def __init__(self, dirty: bool = False, aliases: Optional[Set[str]] = None):
        self.dirty = dirty
        self.aliases: Set[str] = set() if aliases is None else aliases

    def copy(self) -> "_State":
        return _State(self.dirty, set(self.aliases))


def _join(states: Sequence[Optional["_State"]]) -> Optional["_State"]:
    """May-analysis join; ``None`` (terminated path) is the bottom element."""
    live = [s for s in states if s is not None]
    if not live:
        return None
    out = _State(any(s.dirty for s in live))
    for s in live:
        out.aliases |= s.aliases
    return out


def _is_version_store(node: ast.ClassDef) -> bool:
    """A ``SegmentStore`` subclass, or a class self-stamped via ``next_version``."""
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        if name.endswith("SegmentStore"):
            return True
    for item in node.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__init__":
            for stmt in ast.walk(item):
                if (
                    isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Call)
                    and isinstance(stmt.value.func, ast.Name)
                    and stmt.value.func.id == "next_version"
                ):
                    return True
    return False


def _container_attrs(node: ast.ClassDef) -> Set[str]:
    """Attributes initialised to containers in ``__init__`` / class body."""
    attrs: Set[str] = set()

    def classify(target: ast.AST, value: Optional[ast.AST]) -> None:
        if value is None:
            return
        name = None
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            name = target.attr
        elif isinstance(target, ast.Name):
            # class-body annotated container defaults
            name = target.id
        if name is None:
            return
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            attrs.add(name)
        elif isinstance(value, ast.Call):
            func = value.func
            fname = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            if fname in CONTAINER_FACTORIES:
                attrs.add(name)

    for item in node.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__init__":
            for stmt in ast.walk(item):
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        classify(target, stmt.value)
                elif isinstance(stmt, ast.AnnAssign):
                    classify(stmt.target, stmt.value)
    return attrs


class _MethodAnalyzer:
    """Runs the may-dirty walk over one method body."""

    def __init__(self, rule: "SRP001VersionBump", path: str,
                 method: ast.FunctionDef, containers: Set[str]):
        self.rule = rule
        self.path = path
        self.method = method
        self.containers = containers
        self.findings: List[Finding] = []
        self._break_stack: List[List[_State]] = []
        self._continue_stack: List[List[_State]] = []

    # -- expression classification ------------------------------------

    def _is_tracked(self, node: ast.AST, state: _State) -> bool:
        """Does *node* evaluate to (part of) a ``self`` container?"""
        if isinstance(node, ast.Name):
            return node.id in state.aliases
        if isinstance(node, ast.Attribute):
            return (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.containers
            )
        if isinstance(node, ast.Subscript):
            return self._is_tracked(node.value, state)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            return (
                node.func.attr in ALIASING_METHODS
                and self._is_tracked(node.func.value, state)
            )
        return False

    def _is_bump(self, stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and func.attr in ("_bump_version", "_bump_insert")
            ):
                return True
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr == "version"
                ):
                    return True
        return False

    def _stmt_mutates(self, stmt: ast.stmt, state: _State) -> bool:
        # Mutating method / free-function calls anywhere in the statement.
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATING_METHODS
                    and self._is_tracked(func.value, state)
                ):
                    return True
                if (
                    isinstance(func, ast.Name)
                    and func.id in MUTATING_FUNCTIONS
                    and node.args
                    and self._is_tracked(node.args[0], state)
                ):
                    return True
        # Subscript stores / attribute reassignment / deletions.
        targets: List[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            for leaf in self._flatten_target(target):
                if isinstance(leaf, ast.Subscript) and self._is_tracked(
                    leaf.value, state
                ):
                    return True
                if (
                    isinstance(leaf, ast.Attribute)
                    and isinstance(leaf.value, ast.Name)
                    and leaf.value.id == "self"
                    and leaf.attr in self.containers
                ):
                    return True
        return False

    @staticmethod
    def _flatten_target(target: ast.AST) -> List[ast.AST]:
        if isinstance(target, (ast.Tuple, ast.List)):
            out: List[ast.AST] = []
            for elt in target.elts:
                out.extend(_MethodAnalyzer._flatten_target(elt))
            return out
        return [target]

    def _update_aliases(self, stmt: ast.stmt, state: _State) -> None:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            return
        value = stmt.value
        if value is None:
            return
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        tracked = self._is_tracked(value, state)
        for target in targets:
            if isinstance(target, ast.Name):
                if tracked:
                    state.aliases.add(target.id)
                else:
                    state.aliases.discard(target.id)

    # -- control-flow walk --------------------------------------------

    def _flag(self, node: ast.AST, where: str) -> None:
        self.findings.append(self.rule.finding(
            self.path, node,
            f"method '{self.method.name}' mutates a segment container but "
            f"{where} without a version bump "
            "(call self._bump_version() / self._bump_insert() or assign "
            "self.version = next_version())",
        ))

    def walk_body(self, stmts: Sequence[ast.stmt],
                  state: Optional[_State]) -> Optional[_State]:
        cur = state
        for stmt in stmts:
            if cur is None:
                break
            cur = self.walk_stmt(stmt, cur)
        return cur

    def walk_stmt(self, stmt: ast.stmt, state: _State) -> Optional[_State]:
        if isinstance(stmt, ast.Return):
            if state.dirty:
                self._flag(stmt, "returns")
            return None
        if isinstance(stmt, ast.Raise):
            return None  # error exits may leave the store untouched
        if isinstance(stmt, ast.Break):
            if self._break_stack:
                self._break_stack[-1].append(state.copy())
            return None
        if isinstance(stmt, ast.Continue):
            if self._continue_stack:
                self._continue_stack[-1].append(state.copy())
            return None
        if isinstance(stmt, ast.If):
            then_out = self.walk_body(stmt.body, state.copy())
            else_out = self.walk_body(stmt.orelse, state.copy())
            return _join([then_out, else_out])
        if isinstance(stmt, (ast.For, ast.While)):
            return self._walk_loop(stmt, state)
        if isinstance(stmt, ast.With):
            return self.walk_body(stmt.body, state)
        if isinstance(stmt, ast.Try):
            return self._walk_try(stmt, state)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return state  # nested defs are not store exit paths
        # Plain statement: bump clears, mutation dirties, aliases update.
        if self._is_bump(stmt):
            state.dirty = False
            return state
        if self._stmt_mutates(stmt, state):
            state.dirty = True
        self._update_aliases(stmt, state)
        return state

    def _walk_loop(self, stmt: ast.stmt, state: _State) -> Optional[_State]:
        self._break_stack.append([])
        self._continue_stack.append([])
        once = self.walk_body(stmt.body, state.copy())
        once = _join([once] + self._continue_stack[-1])
        self._continue_stack[-1] = []
        # Second pass from the joined fact catches loop-carried dirtiness.
        twice: Optional[_State] = None
        carried = _join([state, once])
        if carried is not None:
            twice = self.walk_body(stmt.body, carried.copy())
            twice = _join([twice] + self._continue_stack[-1])
        breaks = self._break_stack.pop()
        self._continue_stack.pop()
        # Zero, one, or more iterations may run; breaks exit mid-body.
        after = _join([state, once, twice] + breaks)
        if stmt.orelse:
            # ``else`` runs only when the loop finishes without break.
            else_entry = _join([state, once, twice])
            else_out = self.walk_body(stmt.orelse, else_entry)
            return _join([else_out] + breaks) if breaks else else_out
        return after

    def _walk_try(self, stmt: ast.Try, state: _State) -> Optional[_State]:
        body_out = self.walk_body(stmt.body, state.copy())
        # A handler can be entered from any point in the body; be
        # conservative and assume the body's mutations may have landed.
        body_may_dirty = state.copy()
        if any(self._stmt_mutates(s, state) for s in ast.walk(stmt)
               if isinstance(s, ast.stmt)):
            body_may_dirty.dirty = True
        handler_outs = [
            self.walk_body(handler.body, body_may_dirty.copy())
            for handler in stmt.handlers
        ]
        else_out = (
            self.walk_body(stmt.orelse, body_out.copy())
            if (stmt.orelse and body_out is not None) else body_out
        )
        merged = _join([else_out] + handler_outs)
        if stmt.finalbody:
            return self.walk_body(stmt.finalbody, merged)
        return merged

    def run(self) -> List[Finding]:
        final = self.walk_body(self.method.body, _State())
        if final is not None and final.dirty:
            last = self.method.body[-1]
            self._flag(last, "falls off the end")
        return self.findings


class SRP001VersionBump(Rule):
    """Flag store methods whose mutations can escape without a version bump."""

    code = "SRP001"
    name = "store-version-bump"
    scope = ("repro/core/",)

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef) or not _is_version_store(node):
                continue
            containers = _container_attrs(node)
            if not containers:
                continue
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                if item.name in SKIPPED_METHODS:
                    continue
                analyzer = _MethodAnalyzer(self, path, item, containers)
                findings.extend(analyzer.run())
        return findings
