"""SRP004 — planner/simulation failures must carry diagnostics context.

Invariant (PR 2): ``PlanningFailedError`` and ``SimulationError`` expose
a structured ``.diagnostics()`` dict that the CLI prints on stderr and
the fault-recovery ladder logs.  A bare ``raise PlanningFailedError("no
route")`` produces an empty diagnostics payload, which makes faulted-day
failures undebuggable after the fact.

Every ``raise`` of those two exception types (by exact name — subclasses
like ``CollisionError`` populate their own context) must pass at least
one of the diagnostics keywords: ``query_id``, ``release_time``,
``phase``, ``expansions``.  Re-raises of a caught instance (``raise
err``) are not flagged.  Suppress a deliberate bare raise with
``# srplint: allow(SRP004) <reason>``.
"""

from __future__ import annotations

import ast
from typing import List

from srplint.engine import Finding, Rule

CHECKED_EXCEPTIONS = frozenset({"PlanningFailedError", "SimulationError"})
DIAGNOSTIC_KEYWORDS = frozenset({"query_id", "release_time", "phase", "expansions"})


class SRP004Diagnostics(Rule):
    """Flag diagnostics-free raises of the planner's structured errors."""

    code = "SRP004"
    name = "raise-diagnostics"
    scope = ("repro/",)

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if not isinstance(exc, ast.Call):
                continue
            func = exc.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            if name not in CHECKED_EXCEPTIONS:
                continue
            keywords = {kw.arg for kw in exc.keywords if kw.arg is not None}
            if keywords & DIAGNOSTIC_KEYWORDS:
                continue
            if any(kw.arg is None for kw in exc.keywords):
                continue  # **kwargs forwarding — assume context flows through
            findings.append(self.finding(
                path, node,
                f"raise {name}(...) without diagnostics context; pass at "
                "least one of "
                + ", ".join(sorted(DIAGNOSTIC_KEYWORDS))
                + " so .diagnostics() stays actionable",
            ))
        return findings
