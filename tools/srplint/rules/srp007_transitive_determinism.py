"""SRP007 — transitive determinism: the call-graph closure of SRP003.

SRP003 proves planning files clean of *direct* nondeterminism, but a
wall-clock read laundered through a helper module is invisible to it:
``core/planner.py`` calling ``analysis/stats.py`` calling
``time.time()`` passes the per-file check while breaking replay all the
same.  SRP007 closes that hole: starting from every function (and the
module-level body) of the SRP003-scoped modules, it walks the project
call graph and flags any reachable hazard, wherever it lives, with the
call chain that reaches it.

Two hazard kinds are reported *only* here (they need whole-program
context to matter):

* ``id()`` — allocation-order values; deterministic for same-process
  membership, catastrophic as ordering or persisted keys, and the AST
  cannot tell the uses apart, so every reachable site answers with a
  finding or a reasoned pragma;
* ``os.environ`` / ``os.getenv`` — planning output must not be a
  function of the launching shell.

Hazards that SRP003 already reports (wall clocks, unseeded PRNGs, set
iteration) are *not* re-reported inside SRP003's own scope — SRP007
adds the reachable-helper findings, it does not double up.

Suppression: ``# srplint: allow(SRP007) <reason>`` on the hazard line.
"""

from __future__ import annotations

from typing import List

from srplint.engine import Finding, ProjectRule
from srplint.hazards import SRP003_KINDS, scan_function_hazards
from srplint.rules.srp003_determinism import SRP003Determinism

_MODULE_FUNC = "<module>"


class SRP007TransitiveDeterminism(ProjectRule):
    """Flag nondeterminism reachable from planning code via the call graph."""

    code = "SRP007"
    name = "transitive-determinism"
    #: root scope — same files SRP003 pins (findings may land anywhere)
    scope = SRP003Determinism.scope

    def check_project(self, project: object) -> List[Finding]:
        roots = [
            qualname
            for qualname, fn in project.functions.items()  # type: ignore[attr-defined]
            if self.applies_to(fn.module.path)
        ]
        parents = project.reachable_from(roots)  # type: ignore[attr-defined]
        findings: List[Finding] = []
        for qualname in sorted(parents):
            fn = project.functions.get(qualname)  # type: ignore[attr-defined]
            if fn is None:
                continue
            in_scope = self.applies_to(fn.module.path)
            node = fn.node if fn.node is not None else fn.module.tree
            for hazard_node, kind, message in scan_function_hazards(node):
                if kind in SRP003_KINDS and in_scope:
                    continue  # SRP003 reports the direct finding itself
                chain = project.chain_to(parents, qualname)  # type: ignore[attr-defined]
                via = " -> ".join(_short(q) for q in chain)
                findings.append(
                    self.finding(
                        fn.module.path,
                        hazard_node,
                        f"{message} [reachable from planning code: {via}]",
                    )
                )
        return findings


def _short(qualname: str) -> str:
    """Trim ``pkg.mod.Class.method`` to ``mod.Class.method`` for messages."""
    if qualname == "...":
        return qualname
    parts = qualname.split(".")
    return ".".join(parts[-3:]) if len(parts) > 3 else qualname
