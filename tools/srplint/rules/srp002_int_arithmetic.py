"""SRP002 — core time/position arithmetic must stay on ints.

Invariant (Def. 6 / Eq. 2–4 of the paper): committed segments have
slopes ±1/0 and all timestamps/positions are integers.  The Hypothesis
suites assert *bit identity* between cached and uncached planning; a
single float creeping into ``repro/core/`` or ``repro/geometry/``
arithmetic (rounding, ``/`` true division, ``math.*`` transcendental
calls) breaks that guarantee non-deterministically across platforms.

Flagged inside the scoped packages:

* ``float`` (and ``complex``) literals,
* the ``/`` true-division operator (use ``//``),
* calls to the ``float(...)`` builtin,
* ``math.<fn>`` uses outside the integer-safe allowlist
  (``floor/ceil/gcd/isqrt/comb/perm/factorial/lcm/prod``).

Deliberate float use (reporting ratios, paper-fidelity geometry
helpers) is allowlisted per line with ``# srplint: allow-float
<reason>`` — the reason is mandatory and audited in CI.
"""

from __future__ import annotations

import ast
from typing import List

from srplint.engine import Finding, Rule

#: ``math`` functions that are closed over the integers.
INT_SAFE_MATH = frozenset({
    "floor", "ceil", "gcd", "isqrt", "comb", "perm", "factorial", "lcm",
    "prod",
})


class SRP002IntArithmetic(Rule):
    """Flag float-valued arithmetic in the exact-integer core."""

    code = "SRP002"
    name = "int-arithmetic"
    scope = ("repro/core/", "repro/geometry/")

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Constant) and isinstance(
                node.value, (float, complex)
            ):
                findings.append(self.finding(
                    path, node,
                    f"float literal {node.value!r} in exact-integer core "
                    "(slopes are ±1/0 per Def. 6; use ints or add "
                    "'# srplint: allow-float <reason>')",
                ))
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                findings.append(self.finding(
                    path, node,
                    "true division '/' produces a float; use floor "
                    "division '//' in exact-integer core",
                ))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
            ):
                findings.append(self.finding(
                    path, node,
                    "float(...) conversion in exact-integer core",
                ))
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "math"
                and node.attr not in INT_SAFE_MATH
            ):
                findings.append(self.finding(
                    path, node,
                    f"math.{node.attr} is not integer-safe in exact-integer "
                    "core (allowed: " + ", ".join(sorted(INT_SAFE_MATH)) + ")",
                ))
        return findings
