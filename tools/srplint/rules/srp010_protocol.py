"""SRP010 — protocol exhaustiveness for the service message ops.

The planning service speaks two line protocols built from ``op``-tagged
JSON objects: the socket frontend (``protocol.py`` / ``server.py``,
ops gated by ``VALID_OPS``) and the coordinator/shard-worker protocol
(``sharding.py``, dispatched via ``_op_<name>`` methods).  Both sides
evolve independently, and nothing at runtime catches the drift until a
request dies with an unknown-op error — or worse, a constructed op is
silently never answered and a coordinator blocks on a reply that cannot
come.

This rule cross-references, across every module under
``repro/service/``:

* **constructed** op literals — dict literals carrying an ``"op"`` key
  with a constant string value (``{"op": "prepare", ...}``);
* **handled** op literals — ``_op_<name>`` method definitions,
  equality tests of an op expression against a constant
  (``op == "ping"``, ``msg.get("op") == "shutdown"``), membership
  tests against inline tuples, and names listed in ``*_OPS`` constant
  tuples (the protocol-level validity gate).

Every constructed op must be handled somewhere, and every handled op
must be constructed somewhere — a handler nothing can trigger is dead
protocol surface and usually a typo.  Findings anchor at the
construction site (unhandled) or the handler definition / comparison
(never constructed).  Suppress deliberate asymmetries (e.g. an op kept
for wire compatibility) with ``# srplint: allow(SRP010) <reason>``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Tuple

from srplint.engine import Finding, ProjectRule

_OP_METHOD_PREFIX = "_op_"


class SRP010ProtocolExhaustiveness(ProjectRule):
    """Cross-check constructed vs dispatched message ``op`` types."""

    code = "SRP010"
    name = "protocol-exhaustiveness"
    scope = ("repro/service/",)

    def check_project(self, project: object) -> List[Finding]:
        constructed: Dict[str, List[Tuple[str, ast.AST]]] = {}
        handled: Dict[str, List[Tuple[str, ast.AST]]] = {}
        scoped = [
            module
            for path, module in sorted(project.modules.items())  # type: ignore[attr-defined]
            if self.applies_to(path)
        ]
        if not scoped:
            return []
        for module in scoped:
            for op, node in _constructed_ops(module.tree):
                constructed.setdefault(op, []).append((module.path, node))
            for op, node in _handled_ops(module.tree):
                handled.setdefault(op, []).append((module.path, node))

        findings: List[Finding] = []
        for op in sorted(set(constructed) - set(handled)):
            for path, node in constructed[op]:
                findings.append(
                    self.finding(
                        path, node,
                        f"message op '{op}' is constructed here but no "
                        "dispatcher handles it (no _op_ method, comparison "
                        "or *_OPS entry anywhere under repro/service/)",
                    )
                )
        for op in sorted(set(handled) - set(constructed)):
            for path, node in handled[op]:
                findings.append(
                    self.finding(
                        path, node,
                        f"message op '{op}' is dispatched here but never "
                        "constructed anywhere under repro/service/ — dead "
                        "protocol surface or a typo on one side",
                    )
                )
        return findings


def _constructed_ops(tree: ast.Module) -> List[Tuple[str, ast.AST]]:
    out: List[Tuple[str, ast.AST]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Dict):
            continue
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "op"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                out.append((value.value, value))
    return out


def _handled_ops(tree: ast.Module) -> List[Tuple[str, ast.AST]]:
    out: List[Tuple[str, ast.AST]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.startswith(_OP_METHOD_PREFIX):
                out.append((node.name[len(_OP_METHOD_PREFIX):], node))
        elif isinstance(node, ast.Compare):
            out.extend(_compare_ops(node))
        elif isinstance(node, ast.Assign):
            out.extend(_ops_constant(node))
    return out


def _compare_ops(node: ast.Compare) -> List[Tuple[str, ast.AST]]:
    """Ops named in ``<op expr> ==/!=/in <literals>`` tests (either order)."""
    operands = [node.left] + list(node.comparators)
    if not any(_is_op_expr(o) for o in operands):
        return []
    if not all(
        isinstance(o, (ast.Eq, ast.NotEq, ast.In, ast.NotIn)) for o in node.ops
    ):
        return []
    out: List[Tuple[str, ast.AST]] = []
    for operand in operands:
        if isinstance(operand, ast.Constant) and isinstance(
            operand.value, str
        ):
            out.append((operand.value, operand))
        elif isinstance(operand, (ast.Tuple, ast.List, ast.Set)):
            out.extend(
                (elt.value, elt)
                for elt in operand.elts
                if isinstance(elt, ast.Constant)
                and isinstance(elt.value, str)
            )
    return out


def _is_op_expr(expr: ast.AST) -> bool:
    """True for ``op`` / ``<x>.get("op")`` / ``<x>["op"]`` expressions."""
    if isinstance(expr, ast.Name) and expr.id == "op":
        return True
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr == "get"
        and expr.args
        and isinstance(expr.args[0], ast.Constant)
        and expr.args[0].value == "op"
    ):
        return True
    if (
        isinstance(expr, ast.Subscript)
        and isinstance(expr.slice, ast.Constant)
        and expr.slice.value == "op"
    ):
        return True
    return False


def _ops_constant(node: ast.Assign) -> List[Tuple[str, ast.AST]]:
    """String elements of ``<NAME>_OPS = ("...", ...)`` constants."""
    if not any(
        isinstance(t, ast.Name) and t.id.endswith("_OPS")
        for t in node.targets
    ):
        return []
    if not isinstance(node.value, (ast.Tuple, ast.List, ast.Set)):
        return []
    return [
        (elt.value, elt)
        for elt in node.value.elts
        if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
    ]
