"""SRP003 — planning code must be deterministic and clock-free.

Invariant: given the same queries, seeds, and store state, the planner
must produce byte-identical routes on every run and machine — the
regression gates, the plan-cache equivalence suites, and the fault
injection replays (seeded ``random.Random``) all depend on it.

Flagged inside ``repro/core/``, ``repro/pathfinding/``,
``repro/simulation/faults.py``, the battery/charging subsystem
(``repro/simulation/energy.py`` and ``repro/simulation/charging.py``),
and the deterministic half of the planning service
(``repro/service/core.py`` and ``repro/service/telemetry.py`` — the
socket frontend ``server.py`` and the load generator ``loadgen.py``
are the designated homes for real time and stay out of scope):

* wall-clock reads: ``time.time`` / ``time.time_ns`` (``perf_counter``
  is fine — it only feeds *reporting*, never route construction),
* ``datetime.now/today/utcnow``,
* unseeded module-level randomness: bare ``random.<fn>(...)`` calls
  (instantiate ``random.Random(seed)`` instead) and
  ``np.random.<fn>`` outside ``default_rng``/``Generator``,
* ``uuid.uuid1/uuid4``, ``os.urandom``, ``secrets.*``,
* iterating a ``set`` literal or ``set(...)`` call — set order is
  hash-randomised across runs and must never feed route construction.

Deliberate uses are suppressed per line with
``# srplint: allow(SRP003) <reason>``.
"""

from __future__ import annotations

import ast
from typing import List

from srplint.engine import Finding, Rule
from srplint.hazards import (  # noqa: F401  (re-exported: rule tests import these)
    DATETIME_ATTRS,
    NP_RANDOM_OK,
    SEEDED_RANDOM_OK,
    SRP003_KINDS,
    TIME_MODULES,
    WALL_CLOCK_ATTRS,
    scan_hazards,
)


class SRP003Determinism(Rule):
    """Flag wall-clock reads and unseeded nondeterminism in planning code."""

    code = "SRP003"
    name = "determinism"
    scope = (
        "repro/core/",
        "repro/pathfinding/",
        "repro/simulation/faults.py",
        # Joint cluster recovery must replay bit-identically from the
        # fault seed: clustering, priority order, and every escalation
        # decision are pure functions of committed state.
        "repro/simulation/recovery.py",
        # The planning service keeps its scheduler and telemetry pure:
        # wall clocks are legal only in the I/O frontend (server.py)
        # and the load generator (loadgen.py).
        "repro/service/core.py",
        "repro/service/telemetry.py",
        # Region sharding must replay bit-for-bit given the same
        # partition: the partitioner, the router's attempt schedule and
        # every worker are pure functions of (warehouse, K, queries).
        "repro/service/sharding.py",
        # The battery model and charging scheduler feed route planning
        # (charge trips commit occupancy): drain arithmetic, station
        # placement, and admission times must be integer-deterministic.
        "repro/simulation/energy.py",
        "repro/simulation/charging.py",
    )

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        # Detection lives in srplint.hazards (shared with SRP007's
        # call-graph closure); this rule reports the direct, per-file
        # subset with unchanged messages.
        return [
            self.finding(path, node, message)
            for node, kind, message in scan_hazards(tree)
            if kind in SRP003_KINDS
        ]
