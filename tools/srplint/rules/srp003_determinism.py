"""SRP003 — planning code must be deterministic and clock-free.

Invariant: given the same queries, seeds, and store state, the planner
must produce byte-identical routes on every run and machine — the
regression gates, the plan-cache equivalence suites, and the fault
injection replays (seeded ``random.Random``) all depend on it.

Flagged inside ``repro/core/``, ``repro/pathfinding/``,
``repro/simulation/faults.py``, and the deterministic half of the
planning service (``repro/service/core.py`` and
``repro/service/telemetry.py`` — the socket frontend ``server.py`` and
the load generator ``loadgen.py`` are the designated homes for real
time and stay out of scope):

* wall-clock reads: ``time.time`` / ``time.time_ns`` (``perf_counter``
  is fine — it only feeds *reporting*, never route construction),
* ``datetime.now/today/utcnow``,
* unseeded module-level randomness: bare ``random.<fn>(...)`` calls
  (instantiate ``random.Random(seed)`` instead) and
  ``np.random.<fn>`` outside ``default_rng``/``Generator``,
* ``uuid.uuid1/uuid4``, ``os.urandom``, ``secrets.*``,
* iterating a ``set`` literal or ``set(...)`` call — set order is
  hash-randomised across runs and must never feed route construction.

Deliberate uses are suppressed per line with
``# srplint: allow(SRP003) <reason>``.
"""

from __future__ import annotations

import ast
from typing import List

from srplint.engine import Finding, Rule

WALL_CLOCK_ATTRS = frozenset({"time", "time_ns"})
TIME_MODULES = frozenset({"time", "_time"})
DATETIME_ATTRS = frozenset({"now", "today", "utcnow"})
SEEDED_RANDOM_OK = frozenset({"Random", "SystemRandom", "getstate", "setstate"})
NP_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence", "RandomState"})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class SRP003Determinism(Rule):
    """Flag wall-clock reads and unseeded nondeterminism in planning code."""

    code = "SRP003"
    name = "determinism"
    scope = (
        "repro/core/",
        "repro/pathfinding/",
        "repro/simulation/faults.py",
        # Joint cluster recovery must replay bit-identically from the
        # fault seed: clustering, priority order, and every escalation
        # decision are pure functions of committed state.
        "repro/simulation/recovery.py",
        # The planning service keeps its scheduler and telemetry pure:
        # wall clocks are legal only in the I/O frontend (server.py)
        # and the load generator (loadgen.py).
        "repro/service/core.py",
        "repro/service/telemetry.py",
        # Region sharding must replay bit-for-bit given the same
        # partition: the partitioner, the router's attempt schedule and
        # every worker are pure functions of (warehouse, K, queries).
        "repro/service/sharding.py",
    )

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ):
                base, attr = node.value.id, node.attr
                if base in TIME_MODULES and attr in WALL_CLOCK_ATTRS:
                    findings.append(self.finding(
                        path, node,
                        f"wall-clock read {base}.{attr} in deterministic "
                        "planning code (perf_counter is fine for reporting)",
                    ))
                elif base == "datetime" and attr in DATETIME_ATTRS:
                    findings.append(self.finding(
                        path, node,
                        f"wall-clock read datetime.{attr} in deterministic "
                        "planning code",
                    ))
                elif base == "random" and attr not in SEEDED_RANDOM_OK:
                    findings.append(self.finding(
                        path, node,
                        f"unseeded random.{attr} in planning code; "
                        "instantiate random.Random(seed) instead",
                    ))
                elif base == "secrets":
                    findings.append(self.finding(
                        path, node,
                        f"secrets.{attr} is nondeterministic by design",
                    ))
                elif base == "os" and attr == "urandom":
                    findings.append(self.finding(
                        path, node, "os.urandom is nondeterministic",
                    ))
                elif base == "uuid" and attr in ("uuid1", "uuid4"):
                    findings.append(self.finding(
                        path, node,
                        f"uuid.{attr} is nondeterministic; derive ids from "
                        "query ids / seeds instead",
                    ))
            elif isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Attribute
            ):
                inner = node.value
                if (
                    isinstance(inner.value, ast.Name)
                    and inner.value.id in ("np", "numpy")
                    and inner.attr == "random"
                    and node.attr not in NP_RANDOM_OK
                ):
                    findings.append(self.finding(
                        path, node,
                        f"unseeded {inner.value.id}.random.{node.attr}; use "
                        "default_rng(seed)",
                    ))
            elif isinstance(node, (ast.For, ast.comprehension)):
                it = node.iter
                if _is_set_expr(it):
                    findings.append(self.finding(
                        path, it,
                        "iteration over a set has hash-randomised order; "
                        "sort it or use a list/tuple when the order can "
                        "reach route construction",
                    ))
        return findings
