"""Entry point: ``python -m srplint`` / ``python tools/srplint``.

When invoked as ``python tools/srplint`` the package directory itself is
``sys.path[0]`` and absolute ``srplint.*`` imports would fail; bootstrap
the parent (``tools/``) onto ``sys.path`` first so both invocations
behave identically.
"""

import os
import sys

_TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)

from srplint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
